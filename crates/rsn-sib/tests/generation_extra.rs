//! Additional SIB-generation coverage: hierarchy placement, path algebra
//! over the whole embedded suite, and CSU behavior of generated networks.

use rsn_core::csu::SimState;
use rsn_core::AccessSession;
use rsn_itc02::{by_name, parse_soc, suite, Module, Soc};
use rsn_sib::{generate, stats};

#[test]
fn every_suite_network_traces_and_validates_at_reset() {
    for soc in suite() {
        let rsn = generate(&soc).expect("generate");
        let path = rsn.active_path(&rsn.reset_config()).expect("valid reset");
        // Reset path: top registers + top-level module SIBs only.
        let expected = soc.top_registers.len() + soc.top_modules().len();
        assert_eq!(path.segments(&rsn).count(), expected, "{}", soc.name);
    }
}

#[test]
fn deep_hierarchy_exposes_levels_incrementally() {
    let soc = Soc {
        name: "deep".into(),
        modules: vec![
            Module::top("a", vec![2]),
            Module::child("b", 0, vec![2]),
            Module::child("c", 1, vec![2]),
        ],
        top_registers: vec![],
    };
    let rsn = generate(&soc).expect("generate");
    assert_eq!(stats(&rsn, &soc).levels, 4);

    // Opening a exposes b.sib; opening b exposes c.sib; etc.
    let mut cfg = rsn.reset_config();
    for (sib, newly_visible) in [
        ("a.sib", "b.sib"),
        ("b.sib", "c.sib"),
        ("c.sib", "c.c0.sib"),
        ("c.c0.sib", "c.c0.seg"),
    ] {
        let id = rsn.find(sib).expect("sib");
        let vis = rsn.find(newly_visible).expect("inner");
        let before = rsn.active_path(&cfg).expect("valid");
        assert!(
            !before.contains(vis),
            "{newly_visible} hidden before opening {sib}"
        );
        cfg.set_bit(rsn.shadow_offset(id).expect("shadow") as usize, true);
        let after = rsn.active_path(&cfg).expect("valid");
        assert!(
            after.contains(vis),
            "{newly_visible} visible after opening {sib}"
        );
    }
}

#[test]
fn csu_simulation_matches_path_lengths() {
    let soc = parse_soc("SocName t\n1 0 0 0 2 : 5 3\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    let mut st = SimState::reset(&rsn);
    let path = rsn.trace_path(&st.config).expect("trace");
    let len = path.shift_length(&rsn) as usize;
    // Shifting exactly `len` bits brings the injected stream to scan-out.
    let pattern: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
    rsn.csu(&mut st, &pattern, &|_| None).expect("csu 1");
    let out = rsn
        .csu(&mut st, &vec![false; len], &|_| None)
        .expect("csu 2");
    // CSU 2 shifts out what CSU 1 shifted in — unless CSU 1's update
    // reconfigured the path (it wrote SIB registers!). Verify against the
    // new path length instead.
    let new_path = rsn.trace_path(&st.config).expect("trace");
    assert_eq!(out.shifted_out.len(), len);
    assert!(new_path.shift_length(&rsn) >= path.shift_length(&rsn));
}

#[test]
fn sessions_work_across_the_whole_small_suite() {
    for name in ["u226", "d281", "x1331", "q12710"] {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let mut session = AccessSession::new(&rsn);
        // Access the first and last leaf segment.
        let leaves: Vec<_> = rsn
            .segments()
            .filter(|&s| rsn.node(s).name().ends_with(".seg"))
            .collect();
        for &leaf in [leaves.first(), leaves.last()].into_iter().flatten() {
            let len = rsn.node(leaf).as_segment().expect("segment").length as usize;
            let pattern: Vec<bool> = (0..len).map(|i| i % 2 == 1).collect();
            session.write(leaf, &pattern).expect("write");
            let (v, _) = session.read(leaf).expect("read");
            assert_eq!(v, pattern, "{name}: {}", rsn.node(leaf).name());
        }
    }
}

#[test]
fn generated_names_are_unique_and_stable() {
    let soc = by_name("g1023").expect("embedded");
    let a = generate(&soc).expect("generate");
    let b = generate(&soc).expect("generate");
    let names_a: Vec<&str> = a.node_ids().map(|n| a.node(n).name()).collect();
    let names_b: Vec<&str> = b.node_ids().map(|n| b.node(n).name()).collect();
    assert_eq!(names_a, names_b, "generation is deterministic");
    let mut sorted = names_a.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names_a.len(), "names are unique");
}

#[test]
fn group_access_spans_modules() {
    let soc = parse_soc("SocName t\n1 0 0 0 1 : 4\n2 0 0 0 1 : 4\n3 0 0 0 1 : 4\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    let targets: Vec<_> = (1..=3)
        .map(|i| rsn.find(&format!("m{i}.c0.seg")).expect("leaf"))
        .collect();
    let merged = rsn
        .plan_group_access(&targets, &rsn.reset_config())
        .expect("merged");
    // All three modules open in parallel: 2 setup CSUs (module SIBs, then
    // chain SIBs) + data CSU.
    assert_eq!(merged.csu_count(), 3);
}
