//! SIB-based reconfigurable scan network generation (paper Sec. IV-A).
//!
//! In SIB-based RSNs, *segment insertion bits* (SIBs) — one 1-bit register
//! plus a scan multiplexer — provide a configurable bypass of hierarchies
//! of scan segments (Zadegan et al., DATE'11). Depending on the SIB
//! register value, the multiplexer either connects the lower hierarchy into
//! the scan path or bypasses it.
//!
//! [`generate`] turns an ITC'02-style [`Soc`] description into such an
//! RSN:
//!
//! * each *module* contributes one SIB guarding the module's subnetwork;
//!   nested modules nest their SIBs,
//! * each *scan chain* contributes one SIB guarding a leaf segment of the
//!   chain's length,
//! * *top registers* sit directly on the top-level scan path.
//!
//! The generation contract (relied upon by the embedded `rsn-itc02` suite):
//! `mux = modules + chains`, `segments = mux + chains + top_registers`,
//! `bits = mux + payload_bits`, and the RSN hierarchy depth equals the
//! module nesting depth plus one.
//!
//! # Example
//!
//! ```
//! use rsn_itc02::by_name;
//! use rsn_sib::generate;
//!
//! let soc = by_name("u226").expect("embedded");
//! let rsn = generate(&soc)?;
//! assert_eq!(rsn.muxes().count(), 49);
//! assert_eq!(rsn.segments().count(), 89);
//! assert_eq!(rsn.total_bits(), 1465);
//! # Ok::<(), rsn_core::Error>(())
//! ```

use rsn_core::{ControlExpr, NodeId, Result, Rsn, RsnBuilder};
use rsn_itc02::Soc;

/// Structural statistics of a generated SIB-RSN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SibStats {
    /// Number of SIBs (equals the number of scan multiplexers).
    pub sibs: usize,
    /// Number of leaf (chain) segments.
    pub leaves: usize,
    /// Number of direct top-level registers.
    pub top_registers: usize,
    /// Total scan bits, including SIB register bits.
    pub bits: u64,
    /// Hierarchy depth (number of nested SIB levels).
    pub levels: usize,
}

/// Generates a SIB-based RSN from an SoC description.
///
/// # Errors
///
/// Propagates structural validation errors from the RSN builder; a
/// [`Soc`] that passes [`Soc::validate`] always generates successfully.
pub fn generate(soc: &Soc) -> Result<Rsn> {
    let mut b = RsnBuilder::new(soc.name.clone());
    let mut prev = b.scan_in();

    // Direct top-level test data registers.
    for (i, &len) in soc.top_registers.iter().enumerate() {
        let tdr = b.add_segment(format!("tdr{i}"), len);
        b.set_select(tdr, ControlExpr::TRUE);
        b.connect(prev, tdr);
        prev = tdr;
    }

    // Top-level modules in order.
    for idx in soc.top_modules() {
        prev = build_module(&mut b, soc, idx, prev, ControlExpr::TRUE)?;
    }

    let scan_out = b.scan_out();
    b.connect(prev, scan_out);
    b.finish()
}

/// Generates a SIB-based RSN and statically verifies it with `rsn-verify`
/// (SAT proofs of select/path agreement over *all* configurations, plus
/// the structural passes).
///
/// Returns the network together with the verification report; a
/// generated network is expected to verify clean, so callers typically
/// assert [`VerifyReport::is_clean`](rsn_verify::VerifyReport::is_clean).
///
/// # Errors
///
/// Propagates structural validation errors from the RSN builder.
pub fn generate_verified(soc: &Soc) -> Result<(Rsn, rsn_verify::VerifyReport)> {
    let rsn = generate(soc)?;
    let report = rsn_verify::verify(&rsn);
    Ok((rsn, report))
}

/// Builds the SIB + subnetwork of module `idx`; returns its exit node.
fn build_module(
    b: &mut RsnBuilder,
    soc: &Soc,
    idx: usize,
    entry: NodeId,
    guard: ControlExpr,
) -> Result<NodeId> {
    let module = &soc.modules[idx];
    let sib = b.add_segment(format!("{}.sib", module.name), 1);
    b.set_select(sib, guard.clone());
    b.connect(entry, sib);

    let inner_guard = guard & ControlExpr::reg(sib, 0);
    let mut inner_prev = sib;

    // Nested modules first, then the module's own chains.
    for child in soc.children(idx) {
        inner_prev = build_module(b, soc, child, inner_prev, inner_guard.clone())?;
    }
    for (ci, &len) in module.chains.iter().enumerate() {
        let csib = b.add_segment(format!("{}.c{ci}.sib", module.name), 1);
        b.set_select(csib, inner_guard.clone());
        b.connect(inner_prev, csib);
        let leaf = b.add_segment(format!("{}.c{ci}.seg", module.name), len);
        b.set_select(leaf, inner_guard.clone() & ControlExpr::reg(csib, 0));
        b.connect(csib, leaf);
        let mux = b.add_mux(
            format!("{}.c{ci}.mux", module.name),
            vec![csib, leaf],
            vec![ControlExpr::reg(csib, 0)],
        );
        inner_prev = mux;
    }

    let mux = b.add_mux(
        format!("{}.mux", module.name),
        vec![sib, inner_prev],
        vec![ControlExpr::reg(sib, 0)],
    );
    Ok(mux)
}

/// Computes structural statistics of a generated SIB-RSN.
///
/// SIBs are recognized by their `.sib` name suffix, leaves by `.seg`, top
/// registers by the `tdr` prefix — the naming contract of [`generate`].
pub fn stats(rsn: &Rsn, soc: &Soc) -> SibStats {
    let sibs = rsn
        .segments()
        .filter(|&s| rsn.node(s).name().ends_with(".sib"))
        .count();
    let leaves = rsn
        .segments()
        .filter(|&s| rsn.node(s).name().ends_with(".seg"))
        .count();
    let top_registers = rsn
        .segments()
        .filter(|&s| rsn.node(s).name().starts_with("tdr"))
        .count();
    SibStats {
        sibs,
        leaves,
        top_registers,
        bits: rsn.total_bits(),
        levels: soc.depth() + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_itc02::{by_name, parse_soc, suite, TABLE1};

    #[test]
    fn generated_networks_verify_clean() {
        for name in ["u226", "d695"] {
            let soc = by_name(name).expect("embedded");
            let (rsn, report) = generate_verified(&soc).expect("generate");
            assert!(report.is_clean(), "{name}:\n{}", report.render());
            assert_eq!(report.warning_count(), 0, "{name}:\n{}", report.render());
            assert_eq!(rsn.name(), name);
            assert!(report.sat_queries > 0);
        }
    }

    #[test]
    fn tiny_soc_generates_expected_structure() {
        let soc = parse_soc("SocName tiny\n1 0 0 0 2 : 4 6\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        // 1 module SIB + 2 chain SIBs = 3 muxes; 3 SIBs + 2 leaves = 5 segs.
        assert_eq!(rsn.muxes().count(), 3);
        assert_eq!(rsn.segments().count(), 5);
        assert_eq!(rsn.total_bits(), 3 + 4 + 6);
    }

    #[test]
    fn reset_path_contains_only_top_sibs_and_tdrs() {
        let soc = by_name("u226").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let path = rsn.active_path(&rsn.reset_config()).expect("valid reset");
        let on_path: Vec<&str> = path.segments(&rsn).map(|s| rsn.node(s).name()).collect();
        // Top-level: 1 tdr + 10 module SIBs.
        assert_eq!(on_path.len(), 11, "{on_path:?}");
        assert!(on_path[0].starts_with("tdr"));
        assert!(on_path[1..].iter().all(|n| n.ends_with(".sib")));
    }

    #[test]
    fn every_segment_is_accessible_fault_free() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 6\n2 0 0 0 1 : 3\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        for seg in rsn.segments() {
            assert!(
                rsn.is_accessible(seg),
                "{} must be accessible",
                rsn.node(seg).name()
            );
        }
    }

    #[test]
    fn nested_module_sibs_nest() {
        use rsn_itc02::{Module, Soc};
        let soc = Soc {
            name: "nest".into(),
            modules: vec![Module::top("a", vec![2]), Module::child("b", 0, vec![3])],
            top_registers: vec![],
        };
        let rsn = generate(&soc).expect("generate");
        // Opening only a.sib exposes b.sib but not b's chain.
        let a_sib = rsn.find("a.sib").expect("a.sib");
        let b_sib = rsn.find("b.sib").expect("b.sib");
        let mut cfg = rsn.reset_config();
        cfg.set_bit(rsn.shadow_offset(a_sib).expect("shadow") as usize, true);
        let path = rsn.active_path(&cfg).expect("valid");
        assert!(path.contains(b_sib));
        let b_leaf = rsn.find("b.c0.seg").expect("leaf");
        assert!(!path.contains(b_leaf));
    }

    #[test]
    fn whole_suite_matches_table1_characteristics() {
        for (soc, t) in suite().iter().zip(TABLE1) {
            let rsn = generate(soc).expect("generate");
            assert_eq!(rsn.muxes().count(), t.mux, "{}: mux", t.name);
            assert_eq!(rsn.segments().count(), t.segments, "{}: segments", t.name);
            assert_eq!(rsn.total_bits(), t.bits, "{}: bits", t.name);
            let st = stats(&rsn, soc);
            assert_eq!(st.levels, t.levels, "{}: levels", t.name);
            assert_eq!(st.sibs, t.mux, "{}: sibs == mux", t.name);
        }
    }

    #[test]
    fn deep_leaf_access_plan_length_matches_depth() {
        // x1331 has 4 levels; a leaf in the deepest module needs 4 CSUs.
        let soc = by_name("x1331").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let deepest = (0..soc.modules.len())
            .max_by_key(|&i| soc.module_depth(i))
            .expect("has modules");
        assert_eq!(soc.module_depth(deepest), 3);
        let leaf = rsn
            .find(&format!("{}.c0.seg", soc.modules[deepest].name))
            .expect("leaf exists");
        let plan = rsn.plan_access(leaf, &rsn.reset_config()).expect("plan");
        assert_eq!(plan.csu_count(), 4);
    }

    #[test]
    fn stats_counts_components() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let st = stats(&rsn, &soc);
        assert_eq!(st.sibs, 25);
        assert_eq!(st.leaves, 20);
        assert_eq!(st.top_registers, 1);
        assert_eq!(st.bits, 26183);
    }
}
