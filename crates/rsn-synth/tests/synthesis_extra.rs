//! Additional synthesis coverage: hardening structure, option variations,
//! and end-to-end invariants over the embedded suite.

use rsn_core::ControlExpr;
use rsn_fault::{analyze, HardeningProfile};
use rsn_itc02::by_name;
use rsn_sib::generate;
use rsn_synth::area::{costs, AreaModel, Overhead};
use rsn_synth::select::derive_selects;
use rsn_synth::{synthesize, Dataflow, SelectMode, SolverChoice, SynthesisOptions};

#[test]
fn synthesized_selects_have_multiple_stems() {
    // With the augmented out-degree ≥ 2, derived selects of the original
    // segments are disjunctions over at least two fan-out stems.
    let rsn = rsn_core::examples::fig2();
    let mut opts = SynthesisOptions::new();
    opts.select_mode = SelectMode::Always;
    opts.secondary_ports = false;
    let ft = synthesize(&rsn, &opts).expect("synthesize");
    let selects = derive_selects(&ft.rsn);
    for name in ["A", "B", "C"] {
        let seg = ft.rsn.find(name).expect("preserved");
        let stems = ft.rsn.successors(seg).len();
        assert!(stems >= 2, "{name}: only {stems} fan-out stems");
        // The derived expression is a disjunction (or collapses to a
        // constant for always-selected segments).
        match &selects[&seg] {
            ControlExpr::Or(es) => assert!(es.len() >= 2, "{name}"),
            ControlExpr::Const(true) => {}
            other => {
                // Single-stem select would be a hardening violation.
                let printed = format!("{other}");
                assert!(
                    printed.contains('∨'),
                    "{name}: select lacks redundancy: {printed}"
                );
            }
        }
    }
}

#[test]
fn solver_choices_give_equivalent_quality() {
    let soc = by_name("x1331").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let mut greedy_opts = SynthesisOptions::new();
    greedy_opts.solver = SolverChoice::Greedy;
    let greedy = synthesize(&rsn, &greedy_opts).expect("greedy");
    let report = analyze(&greedy.rsn, HardeningProfile::hardened());
    // The greedy result achieves the headline property on its own.
    let total = greedy.rsn.segments().count() as f64;
    assert!(report.worst_segments >= (total - 1.0) / total - 1e-9);
}

#[test]
fn no_secondary_ports_costs_port_resilience_only() {
    let soc = by_name("q12710").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let mut opts = SynthesisOptions::new();
    opts.secondary_ports = false;
    let ft = synthesize(&rsn, &opts).expect("synthesize");
    let report = analyze(&ft.rsn, HardeningProfile::hardened());
    // Port faults now disconnect everything: worst case collapses...
    assert_eq!(report.worst_segments, 0.0);
    // ...but the average barely moves (only 4 port faults exist).
    assert!(report.avg_segments > 0.98, "{report}");
    assert!(ft.rsn.secondary_scan_in().is_none());
}

#[test]
fn alpha_zero_and_one_both_synthesize_correctly() {
    let soc = by_name("x1331").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    for alpha in [0.0, 1.0] {
        let mut opts = SynthesisOptions::new();
        opts.augment.alpha = alpha;
        let ft = synthesize(&rsn, &opts).expect("synthesize");
        let report = analyze(&ft.rsn, HardeningProfile::hardened());
        assert!(report.worst_segments > 0.9, "alpha {alpha}: {report}");
    }
}

#[test]
fn area_model_weights_scale_area_linearly() {
    let rsn = rsn_core::examples::chain(4, 8);
    let base = AreaModel::default();
    let doubled = AreaModel {
        ge_shift_ff: base.ge_shift_ff * 2.0,
        ge_shadow_ff: base.ge_shadow_ff * 2.0,
        ge_mux2: base.ge_mux2 * 2.0,
        ge_voter: base.ge_voter * 2.0,
        ge_gate: base.ge_gate * 2.0,
    };
    let a = costs(&rsn, &base);
    let b = costs(&rsn, &doubled);
    assert!((b.area_ge - 2.0 * a.area_ge).abs() < 1e-9);
    // Ratios are invariant under uniform scaling.
    let o1 = Overhead::between(&a, &a);
    assert!((o1.area_ratio - 1.0).abs() < 1e-12);
}

#[test]
fn ft_dataflow_has_expanded_connectivity() {
    let soc = by_name("h953").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
    let orig_df = Dataflow::extract(&rsn);
    let ft_df = Dataflow::extract(&ft.rsn);
    assert!(ft_df.graph.edge_count() > orig_df.graph.edge_count());
    // Same segment vertices plus the two secondary ports.
    assert_eq!(ft_df.len(), orig_df.len() + 2);
}

#[test]
fn repeated_synthesis_is_idempotent_in_structure() {
    // Synthesizing an already fault-tolerant network must still succeed
    // and keep the worst case at "all but one" (idempotence of the
    // property, not of the netlist).
    let soc = by_name("q12710").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let once = synthesize(&rsn, &SynthesisOptions::new()).expect("first");
    let mut opts = SynthesisOptions::new();
    opts.secondary_ports = false; // port muxes would nest otherwise
    let twice = synthesize(&once.rsn, &opts).expect("second");
    let report = analyze(&twice.rsn, HardeningProfile::hardened());
    assert!(report.avg_segments > 0.98, "{report}");
}

#[test]
fn synthesis_report_counts_are_consistent() {
    let soc = by_name("f2126").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
    let added_mux_actual = ft.rsn.muxes().count() - rsn.muxes().count();
    assert_eq!(ft.report.added_muxes, added_mux_actual);
    let added_bits_actual = ft.rsn.total_bits() - rsn.total_bits();
    assert_eq!(ft.report.added_bits, added_bits_actual);
    assert_eq!(ft.report.added_edges, ft.augmentation.added.len());
}
