//! Selective multiplexer address hardening under an area budget.
//!
//! The paper TMR-protects *every* multiplexer address net (Sec. III-E-3).
//! TMR triples the address logic, so on large networks a designer may
//! prefer to spend the overhead only where it buys accessibility. This
//! module ranks multiplexers by the accessibility their address faults
//! destroy and selects the top candidates within a budget.
//!
//! Hardening one multiplexer only masks *its own* address faults (the
//! [`rsn_fault::effect_of`] translation turns them benign); it does not
//! change the network structure or any other fault's effect. Per-mux
//! gains are therefore additive across the fault-weighted metric, and a
//! greedy top-k selection is exact for a cardinality budget. The ranking
//! evaluates two address faults per multiplexer on a single shared
//! [`AccessEngine`] — the precomputation is paid once for the whole sweep.

use rsn_core::{NodeId, Rsn, RsnBuilder};
use rsn_fault::{effect_of, AccessEngine, Fault, FaultSite, HardeningProfile};

/// Ranked outcome of a hardening-budget selection.
#[derive(Debug, Clone, PartialEq)]
pub struct MuxHardeningPlan {
    /// Every not-yet-hardened multiplexer with its accessibility gain:
    /// the summed segment-accessibility loss of its two address faults
    /// (stuck-at-0 + stuck-at-1) that TMR would mask. Sorted by gain
    /// descending, ties by node id for determinism.
    pub ranked: Vec<(NodeId, f64)>,
    /// The selected multiplexers: the top `budget` entries of `ranked`
    /// with strictly positive gain.
    pub chosen: Vec<NodeId>,
    /// The requested budget.
    pub budget: usize,
}

impl MuxHardeningPlan {
    /// Total accessibility gain of the chosen set.
    pub fn chosen_gain(&self) -> f64 {
        self.ranked
            .iter()
            .filter(|(m, _)| self.chosen.contains(m))
            .map(|&(_, g)| g)
            .sum()
    }
}

/// Ranks all unhardened multiplexers by the accessibility their address
/// faults destroy and picks the best `budget` of them.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_fault::HardeningProfile;
/// use rsn_synth::harden::select_mux_hardening;
///
/// let rsn = fig2();
/// let plan = select_mux_hardening(&rsn, 1, HardeningProfile::unhardened());
/// // Fig. 2's single mux loses segment C when its address sticks: worth
/// // hardening.
/// assert_eq!(plan.chosen.len(), 1);
/// ```
pub fn select_mux_hardening(
    rsn: &Rsn,
    budget: usize,
    profile: HardeningProfile,
) -> MuxHardeningPlan {
    let _span = rsn_obs::Span::enter("select_mux_hardening");
    let engine = AccessEngine::new(rsn);
    let mut scratch = engine.scratch();
    let mut ranked: Vec<(NodeId, f64)> = Vec::new();
    for m in rsn.muxes() {
        if rsn.node(m).as_mux().expect("muxes() yields muxes").hardened {
            continue;
        }
        let mut gain = 0.0;
        for value in [false, true] {
            let fault = Fault {
                site: FaultSite::MuxAddress(m),
                value,
                weight: 1,
            };
            let effect = effect_of(rsn, &fault, profile);
            let frac = if effect.is_benign() {
                1.0
            } else {
                engine
                    .accessibility(&effect, &mut scratch)
                    .segment_fraction()
            };
            gain += 1.0 - frac;
        }
        ranked.push((m, gain));
    }
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.index().cmp(&b.0.index()))
    });
    let chosen: Vec<NodeId> = ranked
        .iter()
        .take(budget)
        .filter(|&&(_, g)| g > 0.0)
        .map(|&(m, _)| m)
        .collect();
    rsn_obs::counter_add("synth.hardened_muxes", chosen.len() as u64);
    MuxHardeningPlan {
        ranked,
        chosen,
        budget,
    }
}

/// Marks the chosen multiplexers as TMR-hardened in a builder. The node
/// ids must come from a probe network built from the same builder
/// (`finish` keeps arena ids stable).
pub fn apply_mux_hardening(builder: &mut RsnBuilder, chosen: &[NodeId]) {
    for &m in chosen {
        builder.harden_mux(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};
    use rsn_fault::{analyze, analyze_with, WeightModel};
    use rsn_itc02::parse_soc;
    use rsn_sib::generate;

    #[test]
    fn fig2_mux_is_worth_hardening() {
        let rsn = fig2();
        let plan = select_mux_hardening(&rsn, 4, HardeningProfile::unhardened());
        assert_eq!(plan.ranked.len(), 1);
        let (m, gain) = plan.ranked[0];
        assert_eq!(m, rsn.find("M").expect("mux"));
        // Address stuck-at-0 loses C, stuck-at-1 loses B: 1/4 each.
        assert!((gain - 0.5).abs() < 1e-9, "gain {gain}");
        assert_eq!(plan.chosen, vec![m]);
        assert!((plan.chosen_gain() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_chooses_nothing() {
        let rsn = fig2();
        let plan = select_mux_hardening(&rsn, 0, HardeningProfile::unhardened());
        assert!(plan.chosen.is_empty());
        assert_eq!(plan.ranked.len(), 1);
    }

    #[test]
    fn harmless_muxes_are_not_chosen() {
        // A chain has no muxes at all; the plan is empty.
        let rsn = chain(3, 2);
        let plan = select_mux_hardening(&rsn, 8, HardeningProfile::unhardened());
        assert!(plan.ranked.is_empty());
        assert!(plan.chosen.is_empty());
    }

    #[test]
    fn ranking_is_deterministic_and_sorted() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let a = select_mux_hardening(&rsn, 3, HardeningProfile::unhardened());
        let b = select_mux_hardening(&rsn, 3, HardeningProfile::unhardened());
        assert_eq!(a, b);
        for w in a.ranked.windows(2) {
            assert!(w[0].1 >= w[1].1, "ranked must be sorted by gain");
        }
    }

    #[test]
    fn hardening_chosen_muxes_improves_metric_by_the_predicted_gain() {
        // Rebuild the SIB network with the chosen muxes hardened and check
        // the weighted-average metric improves by exactly the summed gain
        // (gains are additive: hardening only masks that mux's faults).
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let profile = HardeningProfile::unhardened();
        let plan = select_mux_hardening(&rsn, 2, profile);
        assert!(!plan.chosen.is_empty());

        let mut b = rsn.clone().into_builder();
        apply_mux_hardening(&mut b, &plan.chosen);
        let hardened = b.finish().expect("rebuild");

        let before = analyze_with(&rsn, profile, WeightModel::Ports);
        let after = analyze_with(&hardened, profile, WeightModel::Ports);
        let predicted = plan.chosen_gain() / before.total_weight as f64;
        let actual = after.avg_segments - before.avg_segments;
        assert!(
            (actual - predicted).abs() < 1e-9,
            "predicted {predicted}, actual {actual}"
        );
    }

    #[test]
    fn full_budget_matches_hardening_everything() {
        let rsn = fig2();
        let profile = HardeningProfile::unhardened();
        let plan = select_mux_hardening(&rsn, usize::MAX, profile);

        let mut b = rsn.clone().into_builder();
        apply_mux_hardening(&mut b, &plan.chosen);
        let selective = b.finish().expect("rebuild");

        let mut b = rsn.clone().into_builder();
        let all: Vec<NodeId> = rsn.muxes().collect();
        apply_mux_hardening(&mut b, &all);
        let full = b.finish().expect("rebuild");

        assert_eq!(analyze(&selective, profile), analyze(&full, profile));
    }
}
