//! Gate-equivalent area model and structural cost accounting (paper
//! Sec. IV-C).
//!
//! The paper reports area from a commercial logic synthesis tool; this
//! module substitutes a standard-cell-style gate-equivalent (GE) model.
//! Because the paper's area column is a *ratio* (fault-tolerant / original
//! RSN), any consistent linear model preserves the reported shape: large
//! multiplexer overhead, but total area dominated by scan flip-flops, so
//! bit-heavy networks show ratios near 1.0.

use rsn_core::{ControlExpr, NodeKind, Rsn};

/// Gate-equivalent weights of the area model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One shift-register (scan) flip-flop.
    pub ge_shift_ff: f64,
    /// One shadow-register flip-flop.
    pub ge_shadow_ff: f64,
    /// One 2:1 multiplexer (an `n`:1 mux counts as `n − 1`).
    pub ge_mux2: f64,
    /// One TMR majority voter.
    pub ge_voter: f64,
    /// One two-input logic gate (select logic).
    pub ge_gate: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            ge_shift_ff: 6.0,
            ge_shadow_ff: 4.5,
            ge_mux2: 2.5,
            ge_voter: 4.0,
            ge_gate: 1.5,
        }
    }
}

/// Structural costs of a network under the area model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetworkCosts {
    /// Number of scan multiplexers.
    pub muxes: usize,
    /// 2:1-equivalent multiplexer count (`Σ inputs − 1`).
    pub mux2_equiv: usize,
    /// Total scan bits (shift registers).
    pub bits: u64,
    /// Shadow-register bits.
    pub shadow_bits: u64,
    /// Interconnect count: dataflow nets + address nets (3× when
    /// TMR-hardened) + one select net per segment + one instrument net per
    /// shadowed segment.
    pub nets: usize,
    /// Two-input gates of the select logic (materialized expressions, or
    /// the two-gates-per-fanout-stem estimate of the synthesis rules).
    pub select_gates: usize,
    /// TMR voters (one per hardened multiplexer address).
    pub voters: usize,
    /// Total area in gate equivalents.
    pub area_ge: f64,
}

/// Computes the structural costs of a network.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_synth::area::{costs, AreaModel};
///
/// let c = costs(&fig2(), &AreaModel::default());
/// assert_eq!(c.muxes, 1);
/// assert_eq!(c.bits, 10);
/// assert!(c.area_ge > 0.0);
/// ```
pub fn costs(rsn: &Rsn, model: &AreaModel) -> NetworkCosts {
    let mut c = NetworkCosts::default();
    for id in rsn.node_ids() {
        match rsn.node(id).kind() {
            NodeKind::Segment(s) => {
                c.bits += s.length as u64;
                if s.has_shadow {
                    c.shadow_bits += s.length as u64;
                    c.nets += 1; // instrument data net
                }
                c.nets += 1; // scan-in interconnect
                c.nets += 1; // select net
                             // Select logic: materialized expression gates, or the
                             // synthesis-rule estimate of two gates per fan-out stem.
                let gates = match &s.select {
                    ControlExpr::Const(_) => estimate_stem_gates(rsn, id),
                    e => e.gate_count(),
                };
                c.select_gates += gates;
            }
            NodeKind::Mux(m) => {
                c.muxes += 1;
                c.mux2_equiv += m.inputs.len().saturating_sub(1);
                c.nets += m.inputs.len(); // data input nets
                let addr_nets = m.addr_bits.len().max(1);
                if m.hardened {
                    c.nets += 3 * addr_nets;
                    c.voters += 1;
                } else {
                    c.nets += addr_nets;
                }
            }
            NodeKind::ScanOut => {
                if rsn.node(id).source().is_some() {
                    c.nets += 1;
                }
            }
            NodeKind::ScanIn => {}
        }
    }
    c.area_ge = model.ge_shift_ff * c.bits as f64
        + model.ge_shadow_ff * c.shadow_bits as f64
        + model.ge_mux2 * c.mux2_equiv as f64
        + model.ge_voter * c.voters as f64
        + model.ge_gate * c.select_gates as f64;
    c
}

/// Select-gate estimate when expressions are not materialized: the
/// recursive synthesis rules need roughly one AND (address qualification)
/// and one OR (stem merge) per fan-out stem beyond the first.
fn estimate_stem_gates(rsn: &Rsn, id: rsn_core::NodeId) -> usize {
    let stems = rsn.successors(id).len();
    2 * stems.saturating_sub(1) + stems.min(1)
}

/// Overhead ratios of a fault-tolerant network versus the original — the
/// last four columns of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overhead {
    /// Multiplexer-count ratio.
    pub mux_ratio: f64,
    /// Scan-bit ratio.
    pub bits_ratio: f64,
    /// Interconnect ratio.
    pub nets_ratio: f64,
    /// Gate-equivalent area ratio.
    pub area_ratio: f64,
}

impl Overhead {
    /// Computes the FT/original overhead ratios.
    pub fn between(original: &NetworkCosts, ft: &NetworkCosts) -> Overhead {
        let ratio = |a: f64, b: f64| if b == 0.0 { f64::NAN } else { a / b };
        Overhead {
            mux_ratio: ratio(ft.muxes as f64, original.muxes as f64),
            bits_ratio: ratio(ft.bits as f64, original.bits as f64),
            nets_ratio: ratio(ft.nets as f64, original.nets as f64),
            area_ratio: ratio(ft.area_ge, original.area_ge),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{synthesize, SynthesisOptions};
    use rsn_core::examples::{chain, fig2};
    use rsn_itc02::by_name;
    use rsn_sib::generate;

    #[test]
    fn chain_costs_count_structure() {
        let rsn = chain(3, 4);
        let c = costs(&rsn, &AreaModel::default());
        assert_eq!(c.muxes, 0);
        assert_eq!(c.bits, 12);
        assert_eq!(c.shadow_bits, 12);
        assert!(c.nets >= 4, "3 scan-ins + scan-out + select nets");
        assert!(c.area_ge > 12.0 * 6.0);
    }

    #[test]
    fn hardened_mux_triples_address_nets_and_adds_voter() {
        let rsn = fig2();
        let plain = costs(&rsn, &AreaModel::default());
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let hard = costs(&result.rsn, &AreaModel::default());
        assert_eq!(plain.voters, 0);
        assert_eq!(hard.voters, hard.muxes);
        assert!(hard.nets > plain.nets);
    }

    #[test]
    fn overhead_ratios_exceed_one_after_synthesis() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let model = AreaModel::default();
        let orig = costs(&rsn, &model);
        let ft = costs(&result.rsn, &model);
        let o = Overhead::between(&orig, &ft);
        assert!(o.mux_ratio > 1.5, "mux ratio {}", o.mux_ratio);
        assert!(
            o.bits_ratio > 1.0 && o.bits_ratio < 1.2,
            "bits {}",
            o.bits_ratio
        );
        assert!(o.nets_ratio > 1.0, "nets {}", o.nets_ratio);
        assert!(
            o.area_ratio > 1.0 && o.area_ratio < 1.5,
            "area {}",
            o.area_ratio
        );
    }

    #[test]
    fn bit_heavy_networks_have_smaller_area_ratio() {
        // q12710 has huge scan chains: its area ratio must be closer to 1
        // than the mux-dominated u226 — the paper's Table I shape.
        let model = AreaModel::default();
        let mut ratios = Vec::new();
        for name in ["u226", "q12710"] {
            let soc = by_name(name).expect("embedded");
            let rsn = generate(&soc).expect("generate");
            let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
            let o = Overhead::between(&costs(&rsn, &model), &costs(&result.rsn, &model));
            ratios.push(o.area_ratio);
        }
        assert!(
            ratios[0] > ratios[1],
            "u226 area ratio {} must exceed q12710 {}",
            ratios[0],
            ratios[1]
        );
    }
}
