//! Fault-tolerant RSN synthesis — the paper's primary contribution
//! (Sections III-B to III-E of *Brandhofer, Kochte, Wunderlich,
//! "Synthesis of Fault-Tolerant Reconfigurable Scan Networks", DATE'20*).
//!
//! The pipeline:
//!
//! 1. [`Dataflow::extract`] — the RSN dataflow graph (Sec. III-B).
//! 2. [`augment_ilp`] / [`augment_greedy`] — minimum-cost connectivity
//!    augmentation establishing two vertex-independent paths per segment
//!    (Sec. III-C, III-D), with lazy subtour-elimination cuts.
//! 3. [`synthesize`] — final synthesis: multiplexer insertion, select
//!    re-derivation and hardening, TMR address nets, secondary scan ports
//!    (Sec. III-E).
//! 4. [`area`] — a gate-equivalent area model substituting the paper's
//!    commercial logic synthesis reports (Sec. IV-C).
//!
//! # Example
//!
//! ```
//! use rsn_core::examples::fig2;
//! use rsn_synth::{synthesize, SynthesisOptions};
//!
//! let original = fig2();
//! let ft = synthesize(&original, &SynthesisOptions::new())?;
//! assert!(ft.rsn.muxes().count() > original.muxes().count());
//! # Ok::<(), rsn_synth::SynthError>(())
//! ```

pub mod area;
pub mod augment;
pub mod build;
pub mod dataflow;
pub mod harden;
pub mod select;

pub use area::{AreaModel, NetworkCosts, Overhead};
pub use augment::{
    augment_greedy, augment_ilp, augment_ilp_under, augmented_graph, AugmentOptions, Augmentation,
};
pub use build::{
    synthesize, synthesize_under, SelectMode, SolverChoice, SynthError, SynthesisOptions,
    SynthesisReport, SynthesisResult,
};
pub use dataflow::Dataflow;
pub use harden::{apply_mux_hardening, select_mux_hardening, MuxHardeningPlan};
pub use select::{select_hardness, SelectHardnessReport};
