//! Connectivity augmentation (paper Sec. III-C, III-D).
//!
//! Fault-tolerant RSNs require two *vertex-independent* paths from the
//! scan-in root to every segment and from every segment to the scan-out
//! sink. In a DAG with a unique root and sink this is guaranteed by giving
//! every vertex at least two incoming and two outgoing edges from/to
//! distinct vertices while keeping the graph acyclic (paper Sec. III-D,
//! after Dahl's directed Steiner connectivity results):
//!
//! *Proof sketch (indegree case).* Suppose some vertex `d` were on every
//! root→v path for a set `X` of vertices other than `d`. Take the
//! topologically first `x ∈ X`: its two distinct predecessors are either
//! `d` or outside `X` (by minimality), so at least one predecessor has a
//! root path avoiding `d`, contradicting `x ∈ X`.
//!
//! Two solvers compute a minimum-cost augmenting edge set:
//!
//! * [`augment_ilp`] — the paper's 0/1 ILP with degree constraints and
//!   lazily separated acyclicity (subtour-elimination) cuts, solved by
//!   `rsn-ilp`. Exact, used for small and medium instances.
//! * [`augment_greedy`] — a level-by-level deficit-pairing heuristic that
//!   runs in near-linear time and is compared against the ILP optimum in
//!   the ablation bench.

use std::collections::HashSet;

use rsn_budget::Budget;
use rsn_graph::{dominators, vertex_independent_paths, DiGraph};
use rsn_ilp::{solve_ilp_with_cuts_under, Constraint, ConstraintOp, IlpError, Problem, VarId};

use crate::dataflow::Dataflow;

/// Cost of an augmenting edge: `1 + alpha · (level(j) − level(i))`.
/// Original edges cost 0.
pub fn edge_cost(levels: &[usize], alpha: f64, i: usize, j: usize) -> f64 {
    1.0 + alpha * (levels[j].saturating_sub(levels[i])) as f64
}

/// Options for the augmentation solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentOptions {
    /// Long-line penalty factor in the edge cost.
    pub alpha: f64,
    /// Candidate in/out edges considered per vertex in the ILP (keeps the
    /// variable count tractable; candidates are the cheapest by cost).
    pub max_candidates: usize,
}

impl Default for AugmentOptions {
    fn default() -> Self {
        AugmentOptions {
            alpha: 0.1,
            max_candidates: 8,
        }
    }
}

/// Result of a connectivity augmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct Augmentation {
    /// Added edges as dataflow-vertex pairs `(source, target)`.
    pub added: Vec<(usize, usize)>,
    /// Total cost of the added edges.
    pub cost: f64,
    /// `true` if the exact ILP produced the result.
    pub used_ilp: bool,
    /// Lazy subtour-cut rounds performed (ILP only).
    pub cut_rounds: u32,
    /// Repair edges added by the post-verification (expected 0).
    pub repairs: usize,
}

/// Vertices for which the indegree-2 constraint is enforceable: at least
/// two distinct potential predecessors exist.
fn in_enforceable(df: &Dataflow, v: usize) -> bool {
    if df.is_root(v) {
        return false;
    }
    let candidates = (0..df.len())
        .filter(|&u| u != v && !df.is_sink(u) && df.levels[u] <= df.levels[v])
        .count();
    candidates >= 2
}

/// Vertices for which the outdegree-2 constraint is enforceable.
fn out_enforceable(df: &Dataflow, v: usize) -> bool {
    if df.is_sink(v) {
        return false;
    }
    let candidates = (0..df.len())
        .filter(|&w| w != v && !df.is_root(w) && df.levels[w] >= df.levels[v])
        .count();
    candidates >= 2
}

/// Exact augmentation via the paper's ILP with lazy acyclicity cuts.
///
/// # Errors
///
/// Propagates [`IlpError`] from the solver (infeasibility can only occur
/// on degenerate graphs).
pub fn augment_ilp(df: &Dataflow, opts: &AugmentOptions) -> Result<Augmentation, IlpError> {
    augment_ilp_under(df, opts, &Budget::unlimited())
}

/// Like [`augment_ilp`], bounded by a [`Budget`] shared across all lazy
/// cut rounds.
///
/// # Errors
///
/// [`IlpError::Budget`] when the budget trips before a usable incumbent
/// exists; other [`IlpError`]s as for [`augment_ilp`]. A returned
/// augmentation always satisfies every separated acyclicity cut, but may
/// be suboptimal if the solve finished on an unproven incumbent.
pub fn augment_ilp_under(
    df: &Dataflow,
    opts: &AugmentOptions,
    budget: &Budget,
) -> Result<Augmentation, IlpError> {
    let n = df.len();
    let levels = &df.levels;
    let existing: HashSet<(usize, usize)> = df.graph.edges().collect();

    // Liveness edges: the nearest non-predecessor strict dominator of each
    // vertex (see `pick_source`). These are *required* in the solution —
    // without them, a cost-minimal augmentation can satisfy the degree
    // constraints with detours whose routing control deadlocks after the
    // very fault the detour exists to tolerate.
    let idom = dominators(&df.graph, df.root);
    let mut liveness: Vec<(usize, usize)> = Vec::new();
    for v in 0..n {
        if !in_enforceable(df, v) {
            continue;
        }
        let parents = df.graph.predecessors(v);
        let mut cur = v;
        while idom[cur] != usize::MAX && idom[cur] != cur {
            cur = idom[cur];
            if !parents.contains(&cur)
                && cur != v
                && !df.is_sink(cur)
                && !existing.contains(&(cur, v))
            {
                liveness.push((cur, v));
                break;
            }
            if cur == df.root {
                break;
            }
        }
    }

    // Candidate edges: per vertex, the cheapest max_candidates in-edges and
    // out-edges (plus every original edge at cost 0 and the liveness
    // edges).
    let mut candidates: HashSet<(usize, usize)> = existing.clone();
    candidates.extend(liveness.iter().copied());
    for v in 0..n {
        if v != df.root {
            let mut ins: Vec<usize> = (0..n)
                .filter(|&u| {
                    u != v
                        && !df.is_sink(u)
                        && levels[u] <= levels[v]
                        && !existing.contains(&(u, v))
                })
                .collect();
            ins.sort_by(|&a, &b| {
                edge_cost(levels, opts.alpha, a, v)
                    .partial_cmp(&edge_cost(levels, opts.alpha, b, v))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for &u in ins.iter().take(opts.max_candidates) {
                candidates.insert((u, v));
            }
        }
        if v != df.sink {
            let mut outs: Vec<usize> = (0..n)
                .filter(|&w| {
                    w != v
                        && !df.is_root(w)
                        && levels[w] >= levels[v]
                        && !existing.contains(&(v, w))
                })
                .collect();
            outs.sort_by(|&a, &b| {
                edge_cost(levels, opts.alpha, v, a)
                    .partial_cmp(&edge_cost(levels, opts.alpha, v, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for &w in outs.iter().take(opts.max_candidates) {
                candidates.insert((v, w));
            }
        }
    }

    let mut edges: Vec<(usize, usize)> = candidates.into_iter().collect();
    edges.sort_unstable();

    let mut problem = Problem::new();
    let vars: Vec<VarId> = edges
        .iter()
        .map(|&(i, j)| {
            let cost = if existing.contains(&(i, j)) {
                0.0
            } else {
                edge_cost(levels, opts.alpha, i, j)
            };
            problem.add_binary_var(format!("e{i}_{j}"), cost)
        })
        .collect();

    // Original edges fixed to 1 (E_A ⊇ E); liveness edges required.
    let liveness_set: HashSet<(usize, usize)> = liveness.into_iter().collect();
    for (idx, &(i, j)) in edges.iter().enumerate() {
        if existing.contains(&(i, j)) || liveness_set.contains(&(i, j)) {
            problem.fix_var(vars[idx], 1.0);
        }
    }

    // Degree constraints (paper eq. 2 and 3), where enforceable. The
    // indegree constraint is strengthened: every vertex's original
    // in-edges arrive through a single scan element (its structural
    // driver, possibly a multiplexer shared by several dataflow edges), so
    // they form one failure domain. Two *independent* incoming edges
    // therefore require at least one added edge per vertex.
    for v in 0..n {
        if in_enforceable(df, v) {
            let added_terms: Vec<(VarId, f64)> = edges
                .iter()
                .enumerate()
                .filter(|&(_, &(i, j))| j == v && !existing.contains(&(i, j)))
                .map(|(idx, _)| (vars[idx], 1.0))
                .collect();
            if !added_terms.is_empty() {
                problem.add_ge(added_terms, 1.0);
            }
            let terms: Vec<(VarId, f64)> = edges
                .iter()
                .enumerate()
                .filter(|&(_, &(_, j))| j == v)
                .map(|(idx, _)| (vars[idx], 1.0))
                .collect();
            if terms.len() >= 2 {
                problem.add_ge(terms, 2.0);
            }
        }
        if out_enforceable(df, v) {
            let terms: Vec<(VarId, f64)> = edges
                .iter()
                .enumerate()
                .filter(|&(_, &(i, _))| i == v)
                .map(|(idx, _)| (vars[idx], 1.0))
                .collect();
            if terms.len() >= 2 {
                problem.add_ge(terms, 2.0);
            }
        }
    }

    // Lazy acyclicity cuts (paper eq. 4, separated on violation).
    let edges_for_cuts = edges.clone();
    let vars_for_cuts = vars.clone();
    let n_for_cuts = n;
    let solution = solve_ilp_with_cuts_under(
        &problem,
        move |x| {
            let mut g = DiGraph::new(n_for_cuts);
            for (idx, &(i, j)) in edges_for_cuts.iter().enumerate() {
                if x[vars_for_cuts[idx].index()] > 0.5 {
                    g.add_edge(i, j);
                }
            }
            match g.find_cycle() {
                None => Vec::new(),
                Some(cycle) => {
                    // Σ x_e over the cycle ≤ |cycle| − 1.
                    let mut terms = Vec::new();
                    for w in 0..cycle.len() {
                        let a = cycle[w];
                        let b = cycle[(w + 1) % cycle.len()];
                        if let Some(idx) =
                            edges_for_cuts.iter().position(|&(i, j)| i == a && j == b)
                        {
                            terms.push((vars_for_cuts[idx], 1.0));
                        }
                    }
                    let rhs = terms.len() as f64 - 1.0;
                    vec![Constraint {
                        terms,
                        op: ConstraintOp::Le,
                        rhs,
                    }]
                }
            }
        },
        budget,
    )?;

    let mut added = Vec::new();
    let mut cost = 0.0;
    for (idx, &(i, j)) in edges.iter().enumerate() {
        if solution.is_set(vars[idx]) && !existing.contains(&(i, j)) {
            added.push((i, j));
            cost += edge_cost(levels, opts.alpha, i, j);
        }
    }
    let mut aug = Augmentation {
        added,
        cost,
        used_ilp: true,
        cut_rounds: solution.cut_rounds,
        repairs: 0,
    };
    repair(df, &mut aug, opts.alpha);
    Ok(aug)
}

/// Fast level-by-level deficit-pairing augmentation.
///
/// Pairs each missing in-edge with a missing out-edge at the nearest lower
/// (or same) level; same-level edges always point from the earlier to the
/// later vertex in level order, so no cycle can arise.
pub fn augment_greedy(df: &Dataflow, opts: &AugmentOptions) -> Augmentation {
    let n = df.len();
    let levels = &df.levels;
    let max_level = levels.iter().copied().max().unwrap_or(0);

    let mut chosen: HashSet<(usize, usize)> = df.graph.edges().collect();
    let mut added: Vec<(usize, usize)> = Vec::new();
    let mut indeg: Vec<usize> = (0..n).map(|v| df.graph.in_degree(v)).collect();
    let mut outdeg: Vec<usize> = (0..n).map(|v| df.graph.out_degree(v)).collect();

    // Vertices per level, in a fixed order defining the same-level
    // cycle-free orientation.
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for v in 0..n {
        by_level[levels[v]].push(v);
    }
    let mut pos_in_level = vec![0usize; n];
    for lv in &by_level {
        for (i, &v) in lv.iter().enumerate() {
            pos_in_level[v] = i;
        }
    }

    let add_edge = |u: usize,
                    v: usize,
                    chosen: &mut HashSet<(usize, usize)>,
                    added: &mut Vec<(usize, usize)>,
                    indeg: &mut Vec<usize>,
                    outdeg: &mut Vec<usize>|
     -> bool {
        if u == v || chosen.contains(&(u, v)) {
            return false;
        }
        chosen.insert((u, v));
        added.push((u, v));
        indeg[v] += 1;
        outdeg[u] += 1;
        true
    };

    // Pass 1: satisfy in-deficits level by level, preferring partners with
    // out-deficits at the nearest level. Every enforceable vertex needs at
    // least one *added* in-edge (its original in-edges share the failure
    // domain of its single structural driver) and at least two incoming
    // edges in total.
    let idom = dominators(&df.graph, df.root);
    let mut added_in = vec![0usize; n];
    for level in 0..=max_level {
        for &v in &by_level[level] {
            if !in_enforceable(df, v) {
                continue;
            }
            while indeg[v] < 2 || added_in[v] < 1 {
                let partner = pick_source(
                    df,
                    &by_level,
                    &pos_in_level,
                    &chosen,
                    &outdeg,
                    &idom,
                    v,
                    level,
                );
                match partner {
                    Some(u) => {
                        if add_edge(u, v, &mut chosen, &mut added, &mut indeg, &mut outdeg) {
                            added_in[v] += 1;
                        }
                    }
                    None => break,
                }
            }
        }
    }

    // Pass 2: satisfy remaining out-deficits with the nearest targets.
    for level in (0..=max_level).rev() {
        for &u in &by_level[level] {
            if !out_enforceable(df, u) {
                continue;
            }
            while outdeg[u] < 2 {
                let partner =
                    pick_target(df, &by_level, &pos_in_level, &chosen, u, level, max_level);
                match partner {
                    Some(w) => {
                        add_edge(u, w, &mut chosen, &mut added, &mut indeg, &mut outdeg);
                    }
                    None => break,
                }
            }
        }
    }

    let cost = added
        .iter()
        .map(|&(i, j)| edge_cost(levels, opts.alpha, i, j))
        .sum();
    let mut aug = Augmentation {
        added,
        cost,
        used_ilp: false,
        cut_rounds: 0,
        repairs: 0,
    };
    repair(df, &mut aug, opts.alpha);
    aug
}

/// Picks a source for a new in-edge of `v` at `level`.
///
/// Preference order:
/// 1. The nearest *strict dominator* of `v` (walking the immediate-
///    dominator chain) that is not already a direct predecessor: the new
///    edge then bypasses exactly the single point of failure between the
///    root and `v` (the paper's Sec. III-C SPOF), and — crucially for
///    recoverability from the reset configuration — its routing control
///    sits strictly upstream of everything it bypasses, so the network
///    heals position by position after a fault.
/// 2. The nearest lower/same-level vertex, preferring out-deficits.
#[allow(clippy::too_many_arguments)]
fn pick_source(
    df: &Dataflow,
    by_level: &[Vec<usize>],
    pos_in_level: &[usize],
    chosen: &HashSet<(usize, usize)>,
    outdeg: &[usize],
    idom: &[usize],
    v: usize,
    level: usize,
) -> Option<usize> {
    // 1. Nearest non-predecessor strict dominator.
    let parents = df.graph.predecessors(v);
    let mut cur = v;
    while idom[cur] != usize::MAX && idom[cur] != cur {
        cur = idom[cur];
        if !parents.contains(&cur) && cur != v && !df.is_sink(cur) && !chosen.contains(&(cur, v)) {
            return Some(cur);
        }
        if cur == df.root {
            break;
        }
    }
    for prefer_deficit in [true, false] {
        // Same level first (cheapest), earlier position only (acyclic).
        for &u in &by_level[level] {
            if pos_in_level[u] >= pos_in_level[v] || df.is_sink(u) {
                continue;
            }
            if chosen.contains(&(u, v)) {
                continue;
            }
            if prefer_deficit && !(out_enforceable(df, u) && outdeg[u] < 2) {
                continue;
            }
            return Some(u);
        }
        // Then lower levels, nearest first.
        for l in (0..level).rev() {
            for &u in &by_level[l] {
                if df.is_sink(u) || chosen.contains(&(u, v)) {
                    continue;
                }
                if prefer_deficit && !(out_enforceable(df, u) && outdeg[u] < 2) {
                    continue;
                }
                return Some(u);
            }
        }
    }
    None
}

/// Picks a target for a new out-edge of `u` at `level`: nearest same or
/// higher level; same-level targets must come later in level order.
fn pick_target(
    df: &Dataflow,
    by_level: &[Vec<usize>],
    pos_in_level: &[usize],
    chosen: &HashSet<(usize, usize)>,
    u: usize,
    level: usize,
    max_level: usize,
) -> Option<usize> {
    for &w in &by_level[level] {
        if pos_in_level[w] <= pos_in_level[u] || df.is_root(w) {
            continue;
        }
        if !chosen.contains(&(u, w)) {
            return Some(w);
        }
    }
    for lvl in by_level.iter().take(max_level + 1).skip(level + 1) {
        for &w in lvl {
            if df.is_root(w) || chosen.contains(&(u, w)) {
                continue;
            }
            return Some(w);
        }
    }
    None
}

/// Verifies the Menger property on the augmented graph and adds direct
/// root/sink repair edges where it fails (expected: never, per the
/// degree-2 theorem; kept as an engineering safety net).
fn repair(df: &Dataflow, aug: &mut Augmentation, alpha: f64) {
    let mut g = df.graph.clone();
    for &(i, j) in &aug.added {
        g.add_edge(i, j);
    }
    for v in 0..df.len() {
        if v != df.root && in_enforceable(df, v) && vertex_independent_paths(&g, df.root, v) < 2 {
            g.add_edge(df.root, v);
            aug.added.push((df.root, v));
            aug.cost += edge_cost(&df.levels, alpha, df.root, v);
            aug.repairs += 1;
        }
        if v != df.sink && out_enforceable(df, v) && vertex_independent_paths(&g, v, df.sink) < 2 {
            g.add_edge(v, df.sink);
            aug.added.push((v, df.sink));
            aug.cost += edge_cost(&df.levels, alpha, v, df.sink);
            aug.repairs += 1;
        }
    }
}

/// The augmented graph (original + added edges).
pub fn augmented_graph(df: &Dataflow, aug: &Augmentation) -> DiGraph {
    let mut g = df.graph.clone();
    for &(i, j) in &aug.added {
        g.add_edge(i, j);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2, sib_tree};

    fn check_invariants(df: &Dataflow, aug: &Augmentation) {
        let g = augmented_graph(df, aug);
        assert!(g.is_acyclic(), "augmented graph must stay acyclic");
        for v in 0..df.len() {
            if in_enforceable(df, v) {
                assert!(g.in_degree(v) >= 2, "vertex {v} indegree");
                assert!(
                    vertex_independent_paths(&g, df.root, v) >= 2,
                    "vertex {v} lacks 2 root paths"
                );
            }
            if out_enforceable(df, v) {
                assert!(g.out_degree(v) >= 2, "vertex {v} outdegree");
                assert!(
                    vertex_independent_paths(&g, v, df.sink) >= 2,
                    "vertex {v} lacks 2 sink paths"
                );
            }
        }
        // Level constraint of E_P: level(j) >= level(i) for added edges.
        for &(i, j) in &aug.added {
            assert!(
                df.levels[j] >= df.levels[i],
                "edge ({i},{j}) violates levels"
            );
        }
    }

    #[test]
    fn greedy_augments_fig2() {
        let df = Dataflow::extract(&fig2());
        let aug = augment_greedy(&df, &AugmentOptions::default());
        check_invariants(&df, &aug);
        assert_eq!(aug.repairs, 0, "theorem: no repairs needed");
        assert!(!aug.added.is_empty());
    }

    #[test]
    fn ilp_augments_fig2() {
        let df = Dataflow::extract(&fig2());
        let aug = augment_ilp(&df, &AugmentOptions::default()).expect("solvable");
        check_invariants(&df, &aug);
        assert_eq!(aug.repairs, 0);
        assert!(aug.used_ilp);
    }

    #[test]
    fn ilp_cost_not_worse_than_greedy() {
        for rsn in [fig2(), chain(5, 2), sib_tree(1, 2, 3)] {
            let df = Dataflow::extract(&rsn);
            let opts = AugmentOptions::default();
            let greedy = augment_greedy(&df, &opts);
            let ilp = augment_ilp(&df, &opts).expect("solvable");
            check_invariants(&df, &greedy);
            check_invariants(&df, &ilp);
            assert!(
                ilp.cost <= greedy.cost + 1e-6,
                "{}: ilp {} > greedy {}",
                rsn.name(),
                ilp.cost,
                greedy.cost
            );
        }
    }

    #[test]
    fn chain_augmentation_adds_skip_edges() {
        let df = Dataflow::extract(&chain(6, 2));
        let aug = augment_greedy(&df, &AugmentOptions::default());
        check_invariants(&df, &aug);
        // A pure chain needs roughly one extra in-edge per vertex.
        assert!(aug.added.len() >= df.len() - 3);
    }

    #[test]
    fn every_enforceable_vertex_gains_an_added_in_edge() {
        // The strengthened indegree requirement: in-edges through a shared
        // multiplexer form one failure domain, so every vertex needs at
        // least one *added* in-edge regardless of its dataflow indegree.
        for rsn in [fig2(), chain(5, 2), sib_tree(1, 3, 3)] {
            let df = Dataflow::extract(&rsn);
            let aug = augment_greedy(&df, &AugmentOptions::default());
            for v in 0..df.len() {
                if in_enforceable(&df, v) {
                    assert!(
                        aug.added.iter().any(|&(_, j)| j == v),
                        "{}: vertex {v} has no added in-edge",
                        rsn.name()
                    );
                }
            }
        }
    }

    #[test]
    fn first_vertex_is_exempt() {
        let df = Dataflow::extract(&chain(3, 2));
        // Vertex 1 (first segment) has only the root below and no
        // same-level peers: indegree-2 not enforceable.
        assert!(!in_enforceable(&df, 1));
        assert!(in_enforceable(&df, 2));
    }

    #[test]
    fn edge_cost_penalizes_long_lines() {
        let levels = [0, 1, 2, 5];
        assert!(edge_cost(&levels, 0.5, 0, 3) > edge_cost(&levels, 0.5, 2, 3));
        assert_eq!(edge_cost(&levels, 0.0, 0, 3), edge_cost(&levels, 0.0, 2, 3));
    }
}
