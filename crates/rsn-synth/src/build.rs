//! Final synthesis of the fault-tolerant RSN (paper Sec. III-E).
//!
//! Given the augmenting edge set, this module rebuilds the network:
//!
//! 1. **Integration of the augmenting edges** — every added dataflow edge
//!    `(i, j)` becomes a 2:1 scan multiplexer in front of `j`, whose
//!    secondary input is driven by vertex `i` through a new 1-bit address
//!    register. The address register sits *on the secondary edge* and the
//!    multiplexer selects the secondary input while the register holds its
//!    reset value 0 — this makes the register writable from reset (it is
//!    on the reset scan path) and keeps every *original* scan path at its
//!    original length (the register is bypassed once the original route is
//!    configured), preserving the paper's access-latency guarantee.
//! 2. **Hardening of select signals** — selects are re-derived from the
//!    recursive rules of Sec. III-E-2 ([`crate::select`]); with at least
//!    two outgoing edges per vertex, every select has two independent
//!    assertion stems. Expression materialization is optional (it grows
//!    exponentially with depth), controlled by [`SelectMode`].
//! 3. **Multiplexer address hardening** — every multiplexer address net is
//!    TMR-protected ([`rsn_core::Mux::hardened`]).
//! 4. **Secondary scan ports** — a secondary scan-in drives every
//!    successor of the primary scan-in through port multiplexers, and a
//!    secondary scan-out taps the predecessors of the primary scan-out.

use std::fmt;

use rsn_core::{ControlExpr, NodeId, NodeKind, Rsn, RsnBuilder};
use rsn_ilp::IlpError;

use rsn_budget::Budget;

use crate::augment::{augment_greedy, augment_ilp_under, AugmentOptions, Augmentation};
use crate::dataflow::Dataflow;
use crate::harden::{apply_mux_hardening, select_mux_hardening};
use crate::select::{apply_selects, derive_selects};

/// Which augmentation solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// ILP for small dataflow graphs, greedy beyond `ilp_max_vertices`.
    #[default]
    Auto,
    /// Always the exact ILP.
    Ilp,
    /// Always the greedy heuristic.
    Greedy,
}

/// Whether to materialize synthesized select expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectMode {
    /// Materialize for networks up to 64 nodes, skip beyond.
    #[default]
    Auto,
    /// Always materialize (exponential on deep augmented graphs!).
    Always,
    /// Never materialize (segments keep constant-true selects; the area
    /// model accounts for select logic by formula).
    Never,
}

/// Options of the complete synthesis pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SynthesisOptions {
    /// Augmentation cost options.
    pub augment: AugmentOptions,
    /// Solver selection.
    pub solver: SolverChoice,
    /// Materialization of synthesized selects.
    pub select_mode: SelectMode,
    /// Add secondary scan-in/scan-out ports (Sec. III-E-4).
    pub secondary_ports: bool,
    /// `Auto` solver threshold on dataflow vertices.
    pub ilp_max_vertices: usize,
    /// TMR-harden at most this many multiplexer address nets, chosen by
    /// accessibility gain ([`crate::harden`]). `None` hardens every mux
    /// (the paper's Sec. III-E-3 default).
    pub harden_budget: Option<usize>,
    /// Statically verify the synthesized network with `rsn-verify` (SAT
    /// proofs over all configurations plus graph passes, including the
    /// ineffective-augmentation check over the added edges). Error-severity
    /// findings fail the synthesis with [`SynthError::Verify`]; the full
    /// report lands in [`SynthesisResult::verification`]. Select-predicate
    /// checks are skipped automatically when selects were not
    /// materialized (placeholder constant-true selects).
    pub verify: bool,
}

impl SynthesisOptions {
    /// Paper-faithful defaults: auto solver, secondary ports on, every
    /// multiplexer address hardened.
    pub fn new() -> Self {
        SynthesisOptions {
            augment: AugmentOptions::default(),
            solver: SolverChoice::Auto,
            select_mode: SelectMode::Auto,
            secondary_ports: true,
            ilp_max_vertices: 24,
            harden_budget: None,
            verify: false,
        }
    }

    /// Paper-faithful defaults plus post-synthesis static verification.
    pub fn verified() -> Self {
        SynthesisOptions {
            verify: true,
            ..SynthesisOptions::new()
        }
    }
}

/// Error of the synthesis pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthError {
    /// The augmentation ILP failed.
    Ilp(IlpError),
    /// Rebuilding the network failed structurally.
    Build(rsn_core::Error),
    /// Post-synthesis static verification found error-severity
    /// diagnostics (only with [`SynthesisOptions::verify`]).
    Verify(Box<rsn_verify::VerifyReport>),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Ilp(e) => write!(f, "augmentation ilp failed: {e}"),
            SynthError::Build(e) => write!(f, "network construction failed: {e}"),
            SynthError::Verify(report) => write!(
                f,
                "synthesized network failed static verification with {} error(s):\n{}",
                report.error_count(),
                report.render()
            ),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<IlpError> for SynthError {
    fn from(e: IlpError) -> Self {
        SynthError::Ilp(e)
    }
}

impl From<rsn_core::Error> for SynthError {
    fn from(e: rsn_core::Error) -> Self {
        SynthError::Build(e)
    }
}

/// Quantitative report of one synthesis run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SynthesisReport {
    /// Augmenting dataflow edges integrated.
    pub added_edges: usize,
    /// Scan multiplexers added (augmenting + port muxes).
    pub added_muxes: usize,
    /// Address-register bits added.
    pub added_bits: u64,
    /// `true` if the exact ILP produced the augmentation.
    pub used_ilp: bool,
    /// Lazy acyclicity cut rounds (ILP only).
    pub cut_rounds: u32,
    /// Menger repair edges (expected 0).
    pub repairs: usize,
    /// Whether select expressions were materialized.
    pub selects_materialized: bool,
    /// Multiplexer address nets TMR-hardened (all of them unless
    /// `harden_budget` restricted the set).
    pub hardened_muxes: usize,
    /// `true` if a resource budget forced a fallback from the exact ILP
    /// to the greedy heuristic: the network is valid but possibly
    /// suboptimal.
    pub degraded: bool,
}

impl std::fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "+{} edges, +{} muxes, +{} bits ({}{}, {} cut rounds, {} repairs)",
            self.added_edges,
            self.added_muxes,
            self.added_bits,
            if self.used_ilp { "ILP" } else { "greedy" },
            if self.selects_materialized {
                ", selects materialized"
            } else {
                ""
            },
            self.cut_rounds,
            self.repairs,
        )?;
        if self.degraded {
            write!(f, " [degraded: budget fallback]")?;
        }
        Ok(())
    }
}

/// Result of the synthesis: the fault-tolerant network plus diagnostics.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The fault-tolerant RSN.
    pub rsn: Rsn,
    /// Quantitative report.
    pub report: SynthesisReport,
    /// The augmentation that was integrated.
    pub augmentation: Augmentation,
    /// Static verification report (only with [`SynthesisOptions::verify`]).
    pub verification: Option<rsn_verify::VerifyReport>,
}

fn remap_expr(e: &ControlExpr, map: &[NodeId]) -> ControlExpr {
    match e {
        ControlExpr::Const(b) => ControlExpr::Const(*b),
        ControlExpr::Reg(n, bit) => ControlExpr::Reg(map[n.index()], *bit),
        ControlExpr::Input(i) => ControlExpr::Input(*i),
        ControlExpr::Not(inner) => !remap_expr(inner, map),
        ControlExpr::And(es) => ControlExpr::And(es.iter().map(|x| remap_expr(x, map)).collect()),
        ControlExpr::Or(es) => ControlExpr::Or(es.iter().map(|x| remap_expr(x, map)).collect()),
    }
}

/// Synthesizes a fault-tolerant RSN from an original network.
///
/// # Errors
///
/// Returns [`SynthError`] if the augmentation ILP fails or the rebuilt
/// network does not validate.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_synth::{synthesize, SynthesisOptions};
///
/// let result = synthesize(&fig2(), &SynthesisOptions::new())?;
/// assert!(result.report.added_edges > 0);
/// assert!(result.rsn.secondary_scan_in().is_some());
/// # Ok::<(), rsn_synth::SynthError>(())
/// ```
pub fn synthesize(rsn: &Rsn, opts: &SynthesisOptions) -> Result<SynthesisResult, SynthError> {
    synthesize_under(rsn, opts, &Budget::unlimited())
}

/// Like [`synthesize`], bounded by a [`Budget`].
///
/// The budget governs the augmentation ILP (one work unit per
/// branch-and-bound node). When it trips before the ILP finds a usable
/// solution, synthesis falls back to the greedy heuristic instead of
/// failing and flags the result via [`SynthesisReport::degraded`]; a
/// `budget.degraded_fallbacks` event is counted. With an unlimited
/// budget the result is identical to [`synthesize`].
///
/// # Errors
///
/// As for [`synthesize`]; budget exhaustion is not an error.
pub fn synthesize_under(
    rsn: &Rsn,
    opts: &SynthesisOptions,
    budget: &Budget,
) -> Result<SynthesisResult, SynthError> {
    let root = rsn_obs::Span::enter("synthesize");
    rsn_obs::counter_add("synth.runs", 1);

    let df = phase(&root, "dataflow", "synth.phases.dataflow_ms", || {
        Dataflow::extract(rsn)
    });

    // 0. Connectivity augmentation.
    let use_ilp = match opts.solver {
        SolverChoice::Ilp => true,
        SolverChoice::Greedy => false,
        SolverChoice::Auto => df.len() <= opts.ilp_max_vertices.max(1),
    };
    let mut degraded = false;
    let augmentation = phase(&root, "augment", "synth.phases.augment_ms", || {
        if use_ilp {
            match augment_ilp_under(&df, &opts.augment, budget) {
                // A budget-starved ILP degrades to the heuristic rather
                // than failing: the greedy augmentation is always valid,
                // just possibly costlier.
                Err(IlpError::Budget) => {
                    degraded = true;
                    Ok(augment_greedy(&df, &opts.augment))
                }
                other => other,
            }
        } else {
            Ok(augment_greedy(&df, &opts.augment))
        }
    })?;
    if degraded {
        rsn_obs::counter_add("budget.degraded_fallbacks", 1);
        let reason = budget.exhausted().map_or("work_limit", |r| r.as_str());
        rsn_obs::record_budget_trip("synth", reason);
    }

    let build_span = root.child("build");
    let build_start = std::time::Instant::now();
    // 1. Rebuild the original structure (which may itself already be a
    // fault-tolerant network with secondary ports and control inputs).
    let mut b = RsnBuilder::new(format!("{}_ft", rsn.name()));
    b.add_inputs(rsn.num_inputs());
    let mut map: Vec<NodeId> = vec![NodeId(u32::MAX); rsn.node_count()];
    map[rsn.scan_in().index()] = b.scan_in();
    map[rsn.scan_out().index()] = b.scan_out();
    for id in rsn.node_ids() {
        match rsn.node(id).kind() {
            NodeKind::ScanIn if id != rsn.scan_in() => {
                map[id.index()] = b.add_secondary_scan_in(rsn.node(id).name());
            }
            NodeKind::ScanOut if id != rsn.scan_out() => {
                map[id.index()] = b.add_secondary_scan_out(rsn.node(id).name());
            }
            NodeKind::ScanIn | NodeKind::ScanOut => {}
            NodeKind::Segment(s) => {
                let new = if s.has_shadow {
                    b.add_segment(rsn.node(id).name(), s.length)
                } else {
                    b.add_readonly_segment(rsn.node(id).name(), s.length)
                };
                map[id.index()] = new;
            }
            NodeKind::Mux(_) => {
                // Inputs and addresses may reference nodes created later in
                // the arena (re-synthesized networks); both are remapped in
                // the second pass. Placeholders keep the builder happy.
                let new = b.add_mux(
                    rsn.node(id).name(),
                    vec![b.scan_in(), b.scan_in()],
                    vec![ControlExpr::FALSE],
                );
                map[id.index()] = new;
            }
        }
    }
    // Second pass: connections, addresses, disables, reset values.
    for id in rsn.node_ids() {
        let new = map[id.index()];
        match rsn.node(id).kind() {
            NodeKind::Segment(s) => {
                let src = rsn.node(id).source().expect("validated network");
                b.connect(map[src.index()], new);
                b.set_update_disable(new, remap_expr(&s.update_disable, &map));
                // Selects are re-derived later; keep original as fallback.
                b.set_select(new, remap_expr(&s.select, &map));
            }
            NodeKind::ScanOut => {
                if let Some(src) = rsn.node(id).source() {
                    b.connect(map[src.index()], new);
                }
            }
            NodeKind::Mux(m) => {
                let inputs: Vec<NodeId> = m.inputs.iter().map(|&i| map[i.index()]).collect();
                b.set_mux_inputs(new, inputs);
                let addr: Vec<ControlExpr> =
                    m.addr_bits.iter().map(|e| remap_expr(e, &map)).collect();
                b.set_mux_addr_bits(new, addr);
            }
            NodeKind::ScanIn => {}
        }
    }
    // Reset values of original shadow registers.
    let reset = rsn.reset_config();
    for id in rsn.segments() {
        if let Some(off) = rsn.shadow_offset(id) {
            for bit in 0..rsn.shadow_len(id) {
                let v = reset.bit((off + bit) as usize);
                if v {
                    b.set_reset_bit(map[id.index()], bit, true);
                }
            }
        }
    }

    // 2. Integrate augmenting edges. Each added edge (i, j) becomes a 2:1
    // mux in front of j. The address is the XOR of two routing bits kept
    // in *different* segments (one appended to the source segment i, one
    // appended to the original dataflow predecessor of j): a single
    // stuck-at fault can freeze at most one of the two registers, so the
    // multiplexer always remains steerable to the clean input — the
    // register-level counterpart of the paper's TMR address hardening.
    // Edges sourced at a scan-in port use a primary control input for the
    // first operand (external port-select style; the paper excludes
    // faults on such global control signals).
    let mut report = SynthesisReport {
        added_edges: augmentation.added.len(),
        used_ilp: augmentation.used_ilp,
        cut_rounds: augmentation.cut_rounds,
        repairs: augmentation.repairs,
        degraded,
        ..SynthesisReport::default()
    };
    // Pick, per added edge, the two routing-bit owners.
    let owner_of = |old: NodeId| -> Option<NodeId> {
        rsn.node(old)
            .as_segment()
            .and_then(|s| s.has_shadow.then_some(old))
    };
    // Second owner: the *target* segment itself. The target stays on the
    // active scan path whenever its multiplexer is forced to the secondary
    // input, so even a dirty write (which deterministically delivers the
    // fault's stuck value) can cancel a stuck first operand and restore
    // the original route — the XOR pair is live under every single fault.
    // Fall back to a dataflow predecessor when the target is a port.
    let second_owner = |vi: usize, vj: usize| -> Option<NodeId> {
        owner_of(df.vertex_node[vj]).or_else(|| {
            df.graph
                .predecessors(vj)
                .iter()
                .map(|&p| df.vertex_node[p])
                .filter(|&cand| cand != df.vertex_node[vi])
                .find_map(owner_of)
        })
    };
    let owners: Vec<(Option<NodeId>, Option<NodeId>)> = augmentation
        .added
        .iter()
        .map(|&(vi, vj)| (owner_of(df.vertex_node[vi]), second_owner(vi, vj)))
        .collect();
    // Extend the owning registers up front.
    let mut routing_extra: Vec<u32> = vec![0; rsn.node_count()];
    for (a, b2) in &owners {
        for o in [a, b2].into_iter().flatten() {
            routing_extra[o.index()] += 1;
        }
    }
    for id in rsn.node_ids() {
        let extra = routing_extra[id.index()];
        if extra > 0 {
            b.extend_segment(map[id.index()], extra);
            report.added_bits += extra as u64;
        }
    }
    let mut next_bit: Vec<u32> = rsn
        .node_ids()
        .map(|id| rsn.node(id).as_segment().map_or(0, |s| s.length))
        .collect();
    // A name prefix that is fresh even when the input network already
    // went through a synthesis round (names like "ft.m0" exist then).
    let gen_prefix = {
        let mut g = 0usize;
        while rsn.find(&format!("ft{g}.m0")).is_some() || (g == 0 && rsn.find("ft.m0").is_some()) {
            g += 1;
        }
        if g == 0 {
            "ft".to_string()
        } else {
            format!("ft{g}")
        }
    };
    let mut take_bit = |owner: Option<NodeId>, b: &mut RsnBuilder| -> ControlExpr {
        match owner {
            Some(o) => {
                let bit = next_bit[o.index()];
                next_bit[o.index()] += 1;
                ControlExpr::reg(map[o.index()], bit)
            }
            None => {
                let input = b.add_inputs(1);
                ControlExpr::input(input)
            }
        }
    };
    for (k, &(vi, vj)) in augmentation.added.iter().enumerate() {
        let src = map[df.vertex_node[vi].index()];
        let tgt = map[df.vertex_node[vj].index()];
        let current_driver = b.node(tgt).source().expect("target has a driver");
        let (oa, ob) = owners[k];
        let bit_a = take_bit(oa, &mut b);
        let bit_b = take_bit(ob, &mut b);
        // a XOR b, with both bits reset to 0: original input selected.
        let addr = (bit_a.clone() & !bit_b.clone()) | (!bit_a & bit_b);
        let m = b.add_mux(
            format!("{gen_prefix}.m{k}"),
            vec![current_driver, src],
            vec![addr],
        );
        b.connect(m, tgt);
        report.added_muxes += 1;
    }

    // 4. Secondary scan ports, selected by dedicated primary control
    // inputs (external port-select pins; the paper excludes faults on such
    // global control signals, and the nets are TMR-hardened like every
    // other address).
    if opts.secondary_ports {
        let si2 = b.add_secondary_scan_in("scan_in2");
        let port_sel_in = b.add_inputs(1);
        // Successors of the primary scan-in (structural consumers).
        let consumers: Vec<NodeId> = (0..b.node_count() as u32)
            .map(NodeId)
            .filter(|&n| b.node(n).source() == Some(b.scan_in()))
            .collect();
        for (k, &cons) in consumers.iter().enumerate() {
            let m = b.add_mux(
                format!("{gen_prefix}.si2m{k}"),
                vec![b.scan_in(), si2],
                vec![ControlExpr::input(port_sel_in)],
            );
            b.connect(m, cons);
            report.added_muxes += 1;
        }
        // Secondary scan-out fed by *every* dataflow predecessor of the
        // sink (paper Sec. III-E-4: each predecessor of the primary
        // scan-out port is connected to the secondary port via
        // multiplexers), so a fault anywhere in the final merge still
        // leaves an observation point. The tap select is a per-stage
        // primary control input (global port control, hardened nets).
        let so2 = b.add_secondary_scan_out("scan_out2");
        let primary_driver = b.node(b.scan_out()).source().expect("driven");
        let mut taps: Vec<NodeId> = df
            .graph
            .predecessors(df.sink)
            .iter()
            .map(|&p| map[df.vertex_node[p].index()])
            .collect();
        taps.extend(
            augmentation
                .added
                .iter()
                .filter(|&&(_, j)| j == df.sink)
                .map(|&(i, _)| map[df.vertex_node[i].index()]),
        );
        taps.sort_unstable();
        taps.dedup();
        let mut so2_src = primary_driver;
        for (k, &tap) in taps.iter().enumerate() {
            if tap == so2_src {
                continue;
            }
            let sel = b.add_inputs(1);
            let m = b.add_mux(
                format!("{gen_prefix}.so2m{k}"),
                vec![so2_src, tap],
                vec![ControlExpr::input(sel)],
            );
            so2_src = m;
            report.added_muxes += 1;
        }
        b.connect(so2_src, so2);
    }
    drop(build_span);
    rsn_obs::gauge_set(
        "synth.phases.build_ms",
        build_start.elapsed().as_secs_f64() * 1e3,
    );

    // 3. TMR-harden multiplexer address nets: all of them (paper default)
    // or the best `harden_budget` by accessibility gain.
    phase(&root, "harden", "synth.phases.harden_ms", || {
        match opts.harden_budget {
            None => {
                let mux_ids: Vec<NodeId> = (0..b.node_count() as u32)
                    .map(NodeId)
                    .filter(|&n| b.node(n).as_mux().is_some())
                    .collect();
                report.hardened_muxes = mux_ids.len();
                for m in mux_ids {
                    b.harden_mux(m);
                }
                Ok(())
            }
            Some(budget) => {
                // Probe network: arena ids survive `finish`, so a plan
                // computed on the probe applies directly to the builder.
                let probe = b.clone().finish()?;
                let plan =
                    select_mux_hardening(&probe, budget, rsn_fault::HardeningProfile::hardened());
                report.hardened_muxes = plan.chosen.len();
                apply_mux_hardening(&mut b, &plan.chosen);
                Ok(())
            }
        }
    })
    .map_err(SynthError::Build)?;

    let select_span = root.child("select");
    let select_start = std::time::Instant::now();
    // 2b. Select synthesis.
    let materialize = match opts.select_mode {
        SelectMode::Always => true,
        SelectMode::Never => false,
        SelectMode::Auto => b.node_count() <= 64,
    };
    let ft = if materialize {
        let probe = b.clone().finish()?;
        let selects = derive_selects(&probe);
        apply_selects(&mut b, &selects);
        report.selects_materialized = true;
        b.finish()?
    } else {
        // Conservative constant-true selects: the metric engine and area
        // model do not read them; validity checking is skipped for large
        // fault-tolerant networks (documented in DESIGN.md).
        let ids: Vec<NodeId> = (0..b.node_count() as u32).map(NodeId).collect();
        for id in ids {
            if matches!(b.node(id).kind(), NodeKind::Segment(_)) {
                b.set_select(id, ControlExpr::TRUE);
            }
        }
        b.finish()?
    };
    drop(select_span);
    rsn_obs::gauge_set(
        "synth.phases.select_ms",
        select_start.elapsed().as_secs_f64() * 1e3,
    );

    rsn_obs::counter_add("synth.added_edges", report.added_edges as u64);
    rsn_obs::counter_add("synth.added_muxes", report.added_muxes as u64);
    rsn_obs::counter_add("synth.added_bits", report.added_bits);
    rsn_obs::counter_add(
        if report.used_ilp {
            "synth.ilp_runs"
        } else {
            "synth.greedy_runs"
        },
        1,
    );

    // 5. Optional post-synthesis static verification: SAT proofs over
    // all configurations plus graph passes, including the
    // ineffective-augmentation check over the edges just integrated.
    let verification = if opts.verify {
        let vreport = phase(&root, "verify", "synth.phases.verify_ms", || {
            let vopts = if report.selects_materialized {
                rsn_verify::VerifyOptions::default()
            } else {
                // Placeholder constant-true selects: proving select/path
                // agreement would only re-discover the placeholder.
                rsn_verify::VerifyOptions::without_select_checks()
            };
            let mut vreport = rsn_verify::verify_with(&ft, vopts);
            // Augmentation effectiveness on the *augmented* dataflow graph.
            let mut augmented = df.graph.clone();
            for &(i, j) in &augmentation.added {
                augmented.add_edge(i, j);
            }
            for ineffective in rsn_verify::ineffective_augmentation(
                &augmented,
                &augmentation.added,
                df.root,
                df.sink,
            ) {
                let (vi, vj) = ineffective.edge;
                let tgt = map[df.vertex_node[vj].index()];
                vreport.diagnostics.push(
                    rsn_verify::Diagnostic::new(
                        rsn_verify::Code::IneffectiveAugmentation,
                        &ft,
                        tgt,
                        format!(
                            "augmentation edge {} → {} raises no vertex-independent \
                             path count",
                            ft.node(map[df.vertex_node[vi].index()]).name(),
                            ft.node(tgt).name()
                        ),
                    )
                    .with_related(vec![map[df.vertex_node[vi].index()]]),
                );
            }
            vreport.checks_run.push("augmentation");
            vreport
        });
        if !vreport.is_clean() {
            return Err(SynthError::Verify(Box::new(vreport)));
        }
        Some(vreport)
    } else {
        None
    };

    Ok(SynthesisResult {
        rsn: ft,
        report,
        augmentation,
        verification,
    })
}

/// Runs one pipeline phase under a child span and records its wall time
/// as a `synth.phases.*` gauge.
fn phase<T>(root: &rsn_obs::Span, name: &'static str, gauge: &str, f: impl FnOnce() -> T) -> T {
    let _span = root.child(name);
    let start = std::time::Instant::now();
    let out = f();
    rsn_obs::gauge_set(gauge, start.elapsed().as_secs_f64() * 1e3);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};
    use rsn_itc02::by_name;
    use rsn_sib::generate;

    #[test]
    fn fig2_synthesis_builds_and_validates() {
        let rsn = fig2();
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        assert!(result.report.added_edges >= 3);
        assert_eq!(result.report.repairs, 0);
        // Segment count is unchanged (routing bits extend existing
        // registers), but bits and muxes grow.
        assert_eq!(result.rsn.segments().count(), rsn.segments().count());
        assert!(result.rsn.total_bits() > rsn.total_bits());
        // All muxes hardened.
        for m in result.rsn.muxes() {
            assert!(result.rsn.node(m).as_mux().expect("mux").hardened);
        }
    }

    #[test]
    fn original_reset_path_is_preserved_at_reset() {
        // Routing bits reset to 0, so every added mux selects its original
        // input: the reset scan path is exactly the original one.
        let rsn = fig2();
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let ft = &result.rsn;
        let path = ft.trace_path(&ft.reset_config()).expect("traceable");
        let names: Vec<&str> = path.segments(ft).map(|s| ft.node(s).name()).collect();
        assert_eq!(names, ["A", "B", "D"], "original reset path preserved");
    }

    #[test]
    fn routing_bits_extend_source_segments() {
        let rsn = fig2();
        let mut opts = SynthesisOptions::new();
        opts.secondary_ports = false;
        let result = synthesize(&rsn, &opts).expect("synthesize");
        let ft = &result.rsn;
        // Total added bits equals the sum of per-segment extensions.
        let grown: u64 = ft
            .segments()
            .filter_map(|s| {
                let name = ft.node(s).name().to_string();
                let orig = rsn.find(&name)?;
                let new_len = ft.node(s).as_segment().expect("segment").length as u64;
                let old_len = rsn.node(orig).as_segment().expect("segment").length as u64;
                Some(new_len - old_len)
            })
            .sum();
        assert_eq!(grown, result.report.added_bits);
        assert!(grown > 0, "some routing bits must be register-backed");
    }

    #[test]
    fn reset_path_of_ft_network_is_traceable() {
        let rsn = fig2();
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let path = result
            .rsn
            .trace_path(&result.rsn.reset_config())
            .expect("traceable");
        assert!(path.nodes().len() > 2);
    }

    #[test]
    fn synthesized_selects_validate_on_small_networks() {
        let rsn = fig2();
        let mut opts = SynthesisOptions::new();
        opts.select_mode = SelectMode::Always;
        opts.secondary_ports = false;
        let result = synthesize(&rsn, &opts).expect("synthesize");
        assert!(result.report.selects_materialized);
        // The reset configuration must be valid (selects match the path).
        result
            .rsn
            .active_path(&result.rsn.reset_config())
            .expect("valid reset configuration");
    }

    #[test]
    fn chain_synthesis_adds_one_mux_per_interior_vertex() {
        let rsn = chain(5, 2);
        let mut opts = SynthesisOptions::new();
        opts.secondary_ports = false;
        let result = synthesize(&rsn, &opts).expect("synthesize");
        // Each of the 5 interior-ish vertices gains an in-edge.
        assert!(result.report.added_muxes >= 4);
        assert_eq!(result.report.added_muxes, result.report.added_edges);
    }

    #[test]
    fn sib_benchmark_synthesizes_with_greedy() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        assert!(!result.report.used_ilp, "auto picks greedy for 48 vertices");
        assert_eq!(result.report.repairs, 0);
        // Mux ratio lands in the paper's ballpark (≈ 3.5).
        let ratio = result.rsn.muxes().count() as f64 / rsn.muxes().count() as f64;
        assert!(ratio > 2.0 && ratio < 5.0, "mux ratio {ratio}");
    }

    #[test]
    fn secondary_ports_exist_and_are_wired() {
        let rsn = fig2();
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let ft = &result.rsn;
        let si2 = ft.secondary_scan_in().expect("secondary scan-in");
        let so2 = ft.secondary_scan_out().expect("secondary scan-out");
        assert!(!ft.successors(si2).is_empty());
        assert!(ft.node(so2).source().is_some());
    }

    #[test]
    fn harden_budget_limits_tmr_muxes() {
        let rsn = fig2();
        let mut opts = SynthesisOptions::new();
        opts.harden_budget = Some(2);
        let result = synthesize(&rsn, &opts).expect("synthesize");
        let hardened = result
            .rsn
            .muxes()
            .filter(|&m| result.rsn.node(m).as_mux().expect("mux").hardened)
            .count();
        assert_eq!(hardened, result.report.hardened_muxes);
        assert!(hardened <= 2, "budget must cap hardening: {hardened}");
        let total = result.rsn.muxes().count();
        assert!(hardened < total, "fig2 FT network has > 2 muxes");
        // The unrestricted default hardens everything.
        let full = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        assert_eq!(full.report.hardened_muxes, full.rsn.muxes().count());
    }

    #[test]
    fn verified_synthesis_is_clean_on_fig2() {
        let rsn = fig2();
        let result = synthesize(&rsn, &SynthesisOptions::verified()).expect("synthesize");
        let vreport = result.verification.expect("verification ran");
        assert!(vreport.is_clean(), "{}", vreport.render());
        assert!(
            vreport.checks_run.contains(&"selects"),
            "fig2 is small: selects materialized and checked"
        );
        assert!(vreport.checks_run.contains(&"augmentation"));
        assert!(vreport.sat_queries > 0);
    }

    #[test]
    fn verified_synthesis_skips_select_checks_without_materialization() {
        let rsn = fig2();
        let mut opts = SynthesisOptions::verified();
        opts.select_mode = SelectMode::Never;
        let result = synthesize(&rsn, &opts).expect("synthesize");
        let vreport = result.verification.expect("verification ran");
        assert!(!vreport.checks_run.contains(&"selects"));
        assert!(vreport.is_clean(), "{}", vreport.render());
    }

    #[test]
    fn verified_synthesis_is_clean_on_sib_benchmark() {
        let soc = by_name("u226").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::verified()).expect("synthesize");
        let vreport = result.verification.expect("verification ran");
        assert!(vreport.is_clean(), "{}", vreport.render());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let rsn = fig2();
        let a = synthesize(&rsn, &SynthesisOptions::new()).expect("a");
        let b = synthesize(&rsn, &SynthesisOptions::new()).expect("b");
        assert_eq!(a.augmentation, b.augmentation);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn zero_budget_ilp_synthesis_degrades_to_greedy() {
        let rsn = fig2();
        let mut opts = SynthesisOptions::new();
        opts.solver = SolverChoice::Ilp;
        let budget = Budget::unlimited().with_work_limit(0);
        let result = synthesize_under(&rsn, &opts, &budget).expect("degraded synthesis succeeds");
        assert!(result.report.degraded, "zero budget must flag degradation");
        assert!(!result.report.used_ilp, "fallback must be the heuristic");
        assert!(!result.augmentation.used_ilp);
        assert!(
            format!("{}", result.report).contains("degraded"),
            "degradation must be visible in the rendered report"
        );
        // The fallback network is still a valid fault-tolerant RSN: it
        // matches what a direct greedy synthesis produces.
        let mut greedy_opts = SynthesisOptions::new();
        greedy_opts.solver = SolverChoice::Greedy;
        let greedy = synthesize(&rsn, &greedy_opts).expect("greedy");
        assert_eq!(result.augmentation, greedy.augmentation);
    }

    #[test]
    fn unlimited_budget_synthesis_matches_unbudgeted() {
        let rsn = fig2();
        let opts = SynthesisOptions::new();
        let plain = synthesize(&rsn, &opts).expect("plain");
        let budgeted =
            synthesize_under(&rsn, &opts, &Budget::unlimited()).expect("unlimited budget");
        assert_eq!(plain.report, budgeted.report);
        assert_eq!(plain.augmentation, budgeted.augmentation);
        assert!(!budgeted.report.degraded);
    }

    #[test]
    fn generous_budget_keeps_exact_ilp_result() {
        let rsn = fig2();
        let mut opts = SynthesisOptions::new();
        opts.solver = SolverChoice::Ilp;
        let budget = Budget::unlimited().with_work_limit(1_000_000);
        let budgeted = synthesize_under(&rsn, &opts, &budget).expect("budgeted");
        let plain = synthesize(&rsn, &opts).expect("plain");
        assert!(!budgeted.report.degraded);
        assert!(budgeted.report.used_ilp);
        assert_eq!(plain.report, budgeted.report);
    }
}
