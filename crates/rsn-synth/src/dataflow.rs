//! RSN dataflow-graph extraction (paper Sec. III-B).
//!
//! The dataflow graph abstracts an RSN to its scan-data connectivity:
//! vertices are scan segments plus the primary scan-in (unique root) and
//! scan-out (unique sink) ports; multiplexers collapse into edge merge
//! points; control logic is excluded. The graph is a DAG (IEEE Std 1687
//! permits only non-sensitizable structural cycles, and this toolchain
//! builds acyclic structures).

use rsn_core::{NodeId, NodeKind, Rsn};
use rsn_graph::DiGraph;

/// The dataflow graph of an RSN with its vertex ↔ node mapping.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// The graph: vertex 0 is the scan-in root; the scan-out sink is
    /// [`Dataflow::sink`].
    pub graph: DiGraph,
    /// Node behind each vertex.
    pub vertex_node: Vec<NodeId>,
    /// Vertex of each node (usize::MAX for muxes, which are collapsed).
    pub node_vertex: Vec<usize>,
    /// Topological level of each vertex (longest-path layering).
    pub levels: Vec<usize>,
    /// Root vertex (primary scan-in).
    pub root: usize,
    /// Sink vertex (primary scan-out).
    pub sink: usize,
    /// All root vertices (primary + secondary scan-in ports).
    pub roots: Vec<usize>,
    /// All sink vertices (primary + secondary scan-out ports).
    pub sinks: Vec<usize>,
}

impl Dataflow {
    /// `true` if the vertex is a scan-in port (never a valid edge target).
    pub fn is_root(&self, v: usize) -> bool {
        self.roots.contains(&v)
    }

    /// `true` if the vertex is a scan-out port (never a valid edge source).
    pub fn is_sink(&self, v: usize) -> bool {
        self.sinks.contains(&v)
    }
}

impl Dataflow {
    /// Extracts the dataflow graph of a network.
    ///
    /// # Panics
    ///
    /// Panics if the network dataflow is cyclic (validated networks are
    /// acyclic by construction).
    ///
    /// # Example
    ///
    /// ```
    /// use rsn_core::examples::fig2;
    /// use rsn_synth::Dataflow;
    ///
    /// let df = Dataflow::extract(&fig2());
    /// // scan-in + A,B,C,D + scan-out.
    /// assert_eq!(df.graph.len(), 6);
    /// assert_eq!(df.levels[df.root], 0);
    /// ```
    pub fn extract(rsn: &Rsn) -> Dataflow {
        let mut vertex_node = Vec::new();
        let mut node_vertex = vec![usize::MAX; rsn.node_count()];

        let add = |id: NodeId, vertex_node: &mut Vec<NodeId>, node_vertex: &mut Vec<usize>| {
            node_vertex[id.index()] = vertex_node.len();
            vertex_node.push(id);
        };
        add(rsn.scan_in(), &mut vertex_node, &mut node_vertex);
        if let Some(si2) = rsn.secondary_scan_in() {
            add(si2, &mut vertex_node, &mut node_vertex);
        }
        for seg in rsn.segments() {
            add(seg, &mut vertex_node, &mut node_vertex);
        }
        if let Some(so2) = rsn.secondary_scan_out() {
            add(so2, &mut vertex_node, &mut node_vertex);
        }
        add(rsn.scan_out(), &mut vertex_node, &mut node_vertex);

        let root = 0;
        let sink = vertex_node.len() - 1;
        let mut graph = DiGraph::new(vertex_node.len());

        // For each vertex, collect its dataflow predecessors by walking
        // backward through multiplexers.
        for (v, &node) in vertex_node.iter().enumerate() {
            if node == rsn.scan_in() {
                continue;
            }
            let mut stack: Vec<NodeId> = rsn.predecessors(node);
            let mut sources = Vec::new();
            while let Some(p) = stack.pop() {
                match rsn.node(p).kind() {
                    NodeKind::Mux(_) => stack.extend(rsn.predecessors(p)),
                    _ => sources.push(p),
                }
            }
            sources.sort_unstable();
            sources.dedup();
            for s in sources {
                let u = node_vertex[s.index()];
                assert_ne!(u, usize::MAX, "dataflow source must be a vertex");
                graph.add_edge(u, v);
            }
        }

        let levels = graph.levels().expect("RSN dataflow must be acyclic");
        let mut roots = vec![root];
        if let Some(si2) = rsn.secondary_scan_in() {
            roots.push(node_vertex[si2.index()]);
        }
        let mut sinks = vec![sink];
        if let Some(so2) = rsn.secondary_scan_out() {
            sinks.push(node_vertex[so2.index()]);
        }
        Dataflow {
            graph,
            vertex_node,
            node_vertex,
            levels,
            root,
            sink,
            roots,
            sinks,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` if the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Human-readable name of a vertex (the underlying node's name).
    pub fn name<'a>(&self, rsn: &'a Rsn, v: usize) -> &'a str {
        rsn.node(self.vertex_node[v]).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2, sib_tree};
    use rsn_graph::vertex_independent_paths;

    #[test]
    fn fig2_dataflow_shape() {
        let rsn = fig2();
        let df = Dataflow::extract(&rsn);
        assert_eq!(df.len(), 6);
        let a = df.node_vertex[rsn.find("A").expect("A").index()];
        let b = df.node_vertex[rsn.find("B").expect("B").index()];
        let c = df.node_vertex[rsn.find("C").expect("C").index()];
        let d = df.node_vertex[rsn.find("D").expect("D").index()];
        // scan_in -> A -> {B, C} -> D -> scan_out (mux collapsed).
        assert!(df.graph.has_edge(df.root, a));
        assert!(df.graph.has_edge(a, b));
        assert!(df.graph.has_edge(a, c));
        assert!(df.graph.has_edge(b, d));
        assert!(df.graph.has_edge(c, d));
        assert!(df.graph.has_edge(d, df.sink));
        assert_eq!(df.graph.edge_count(), 6);
    }

    #[test]
    fn chain_dataflow_is_a_path() {
        let rsn = chain(4, 2);
        let df = Dataflow::extract(&rsn);
        assert_eq!(df.len(), 6);
        assert_eq!(df.graph.edge_count(), 5);
        for v in 0..df.len() {
            assert_eq!(df.levels[v], v, "chain levels are positions");
        }
    }

    #[test]
    fn sib_tree_dataflow_merges_at_muxes() {
        let rsn = sib_tree(1, 2, 4);
        let df = Dataflow::extract(&rsn);
        // Each SIB guard merge: the node after a SIB's mux has indegree 2
        // (bypass from the SIB, and the leaf exit).
        let sink_preds = df.graph.in_degree(df.sink);
        assert_eq!(sink_preds, 2, "last SIB's mux merges two sources");
        // Root and sink are unique.
        assert_eq!(df.graph.in_degree(df.root), 0);
        assert_eq!(df.graph.out_degree(df.sink), 0);
    }

    #[test]
    fn fig2_has_two_paths_only_between_a_and_d() {
        let rsn = fig2();
        let df = Dataflow::extract(&rsn);
        let a = df.node_vertex[rsn.find("A").expect("A").index()];
        let d = df.node_vertex[rsn.find("D").expect("D").index()];
        assert_eq!(vertex_independent_paths(&df.graph, a, d), 2);
        assert_eq!(vertex_independent_paths(&df.graph, df.root, df.sink), 1);
    }

    #[test]
    fn node_vertex_roundtrip() {
        let rsn = fig2();
        let df = Dataflow::extract(&rsn);
        for (v, &n) in df.vertex_node.iter().enumerate() {
            assert_eq!(df.node_vertex[n.index()], v);
        }
        // Muxes are not vertices.
        for m in rsn.muxes() {
            assert_eq!(df.node_vertex[m.index()], usize::MAX);
        }
    }
}
