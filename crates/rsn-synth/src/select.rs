//! Select-signal synthesis and hardening (paper Sec. III-E-2).
//!
//! In the fault-tolerant RSN the select signals of the original network
//! are discarded and re-derived recursively from the scan-out port:
//!
//! * the last scan element (primary scan-out) is always selected,
//! * if `u` fans out to multiple scan elements, `u` is selected when any
//!   direct successor selects it,
//! * if the direct successor of `u` is a multiplexer, the multiplexer must
//!   be selected *and* configured to forward `u`,
//! * if `u` has one direct successor, that successor must be selected.
//!
//! Because the augmented dataflow gives every segment at least two
//! outgoing edges, the derived select expression is a disjunction over at
//! least two independent fan-out stems — a single stuck-at-0 on one stem
//! leaves the other assertion path intact (the hardening argument of the
//! paper).
//!
//! Expressions are materialized as [`ControlExpr`] trees. Tree size can
//! grow exponentially with network depth on augmented graphs (each vertex
//! disjoins two successor expressions), so materialization is intended for
//! small networks and the Fig. 5 reproduction; large networks keep
//! formula-based select accounting in the area model instead.

use std::collections::HashMap;

use rsn_core::{ControlExpr, NodeId, NodeKind, Rsn, RsnBuilder};

/// Derives the select expression of every node per the recursive rules.
///
/// Returns a map from node to its (simplified) select expression. The
/// scan-out port maps to constant true.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_synth::select::derive_selects;
///
/// let rsn = fig2();
/// let selects = derive_selects(&rsn);
/// let a = rsn.find("A").expect("A");
/// // A feeds both branches: its derived select is the disjunction of the
/// // two stems (¬A[0] ∨ A[0], a tautology left un-collapsed).
/// let cfg = rsn.reset_config();
/// assert!(rsn.eval(&selects[&a], &cfg)?);
/// # Ok::<(), rsn_core::Error>(())
/// ```
pub fn derive_selects(rsn: &Rsn) -> HashMap<NodeId, ControlExpr> {
    let mut sel: HashMap<NodeId, ControlExpr> = HashMap::new();
    // Reverse topological order: successors before predecessors.
    for &v in rsn.topo_order().iter().rev() {
        let expr = match rsn.node(v).kind() {
            NodeKind::ScanOut => {
                if v == rsn.scan_out() {
                    ControlExpr::TRUE
                } else {
                    // Secondary scan-out: enabled through a dedicated
                    // primary control input when present; treat as
                    // selectable.
                    ControlExpr::TRUE
                }
            }
            _ => {
                let mut stems = Vec::new();
                for &w in rsn.successors(v) {
                    let contribution = match rsn.node(w).kind() {
                        NodeKind::Mux(mux) => {
                            // w forwards v iff its address selects v's
                            // input index; several indices may match.
                            let mut alts = Vec::new();
                            for (k, &inp) in mux.inputs.iter().enumerate() {
                                if inp != v {
                                    continue;
                                }
                                let mut conj =
                                    vec![sel.get(&w).cloned().unwrap_or(ControlExpr::FALSE)];
                                for (bit, e) in mux.addr_bits.iter().enumerate() {
                                    let want = (k >> bit) & 1 == 1;
                                    conj.push(if want { e.clone() } else { !e.clone() });
                                }
                                alts.push(ControlExpr::And(conj));
                            }
                            ControlExpr::Or(alts)
                        }
                        _ => sel.get(&w).cloned().unwrap_or(ControlExpr::FALSE),
                    };
                    stems.push(contribution);
                }
                ControlExpr::Or(stems).simplified()
            }
        };
        sel.insert(v, expr);
    }
    sel
}

/// Applies derived selects to every segment of a builder.
///
/// `selects` must cover every segment node (as produced by
/// [`derive_selects`] on the same structure).
pub fn apply_selects(builder: &mut RsnBuilder, selects: &HashMap<NodeId, ControlExpr>) {
    let ids: Vec<NodeId> = (0..builder.node_count() as u32).map(NodeId).collect();
    for id in ids {
        if matches!(builder.node(id).kind(), NodeKind::Segment(_)) {
            if let Some(e) = selects.get(&id) {
                builder.set_select(id, e.clone());
            }
        }
    }
}

/// Per-segment fan-out stem report: how many independent assertion paths
/// each segment's select can be derived from.
///
/// The Sec. III-E-2 hardening argument needs at least two outgoing
/// dataflow edges per segment — each stem is an independent disjunct of
/// the derived select, so a single stem stuck-at-0 is masked. Segments
/// with a single stem remain select-vulnerable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectHardnessReport {
    /// `(segment, stem count)` in arena order.
    pub stems: Vec<(NodeId, usize)>,
}

impl SelectHardnessReport {
    /// Fraction of segments with ≥ 2 independent stems (1.0 for an empty
    /// network).
    pub fn hardened_fraction(&self) -> f64 {
        if self.stems.is_empty() {
            return 1.0;
        }
        let ok = self.stems.iter().filter(|&&(_, n)| n >= 2).count();
        ok as f64 / self.stems.len() as f64
    }

    /// Segments with fewer than two stems (still select-vulnerable).
    pub fn vulnerable(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.stems
            .iter()
            .filter(|&&(_, n)| n < 2)
            .map(|&(seg, _)| seg)
    }
}

/// Counts the independent select stems of every segment (its outgoing
/// dataflow edges, counting each multiplexer input separately).
pub fn select_hardness(rsn: &Rsn) -> SelectHardnessReport {
    let stems = rsn
        .segments()
        .map(|seg| {
            let mut count = 0usize;
            for &w in rsn.successors(seg) {
                count += match rsn.node(w).kind() {
                    NodeKind::Mux(m) => m.inputs.iter().filter(|&&i| i == seg).count(),
                    _ => 1,
                };
            }
            (seg, count)
        })
        .collect();
    SelectHardnessReport { stems }
}

/// Renders the select equation of a segment in the style of the paper's
/// Fig. 5 (`Select(B) := …`).
pub fn select_equation(rsn: &Rsn, selects: &HashMap<NodeId, ControlExpr>, seg: NodeId) -> String {
    let name = rsn.node(seg).name();
    match selects.get(&seg) {
        Some(e) => format!("Select({name}) := {e}"),
        None => format!("Select({name}) := <undefined>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};
    use rsn_core::Config;

    /// Exhaustively checks that the derived select of every segment equals
    /// its traced path membership, over all configurations.
    fn check_select_equals_onpath(rsn: &Rsn) {
        let selects = derive_selects(rsn);
        let n_bits = rsn.shadow_bits() as usize;
        assert!(n_bits <= 16, "exhaustive check only for small networks");
        for m in 0u32..(1 << n_bits) {
            let mut cfg = Config::zeroed(n_bits, rsn.num_inputs());
            for b in 0..n_bits {
                cfg.set_bit(b, (m >> b) & 1 == 1);
            }
            let path = match rsn.trace_path(&cfg) {
                Ok(p) => p,
                Err(_) => continue, // invalid mux address decode
            };
            for seg in rsn.segments() {
                let derived = rsn.eval(&selects[&seg], &cfg).expect("evaluable");
                assert_eq!(
                    derived,
                    path.contains(seg),
                    "cfg {m:b}: segment {} derived select mismatch",
                    rsn.node(seg).name()
                );
            }
        }
    }

    #[test]
    fn derived_selects_match_path_membership_fig2() {
        check_select_equals_onpath(&fig2());
    }

    #[test]
    fn derived_selects_match_path_membership_chain() {
        check_select_equals_onpath(&chain(3, 2));
    }

    #[test]
    fn chain_selects_are_constant_true() {
        let rsn = chain(4, 2);
        let selects = derive_selects(&rsn);
        for seg in rsn.segments() {
            assert!(selects[&seg].is_true());
        }
    }

    #[test]
    fn fig2_branch_selects_depend_on_address() {
        let rsn = fig2();
        let selects = derive_selects(&rsn);
        let a = rsn.find("A").expect("A");
        let b = rsn.find("B").expect("B");
        let c = rsn.find("C").expect("C");
        // B is selected when the mux forwards it (address 0).
        assert_eq!(selects[&b], (!ControlExpr::reg(a, 0)).simplified());
        assert_eq!(selects[&c], ControlExpr::reg(a, 0));
    }

    #[test]
    fn hardness_report_flags_single_stem_segments() {
        let rsn = fig2();
        let report = select_hardness(&rsn);
        let a = rsn.find("A").expect("A");
        // A fans out to both branches; B, C, D each have one successor.
        let stems_of = |n| report.stems.iter().find(|&&(s, _)| s == n).unwrap().1;
        assert_eq!(stems_of(a), 2);
        assert_eq!(report.hardened_fraction(), 0.25);
        assert_eq!(report.vulnerable().count(), 3);
    }

    #[test]
    fn synthesis_hardens_every_select_stem() {
        use crate::{synthesize, SynthesisOptions};
        let rsn = fig2();
        let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let report = select_hardness(&ft.rsn);
        assert_eq!(
            report.hardened_fraction(),
            1.0,
            "vulnerable: {:?}",
            report.vulnerable().collect::<Vec<_>>()
        );
    }

    #[test]
    fn select_equation_renders() {
        let rsn = fig2();
        let selects = derive_selects(&rsn);
        let b = rsn.find("B").expect("B");
        let eq = select_equation(&rsn, &selects, b);
        assert!(eq.starts_with("Select(B) :="), "{eq}");
    }
}
