//! The metric-name catalog test: after an end-to-end small-SoC run that
//! exercises every engine, every name in the global registry must match
//! an entry of `rsn_obs::METRIC_CATALOG` (and carry the catalogued
//! kind). This is what keeps the README/DESIGN telemetry tables honest —
//! a new or renamed metric fails here until the catalog (and docs) are
//! updated with it.
//!
//! Kept as a single test in its own binary so the process-global
//! registry sees exactly this pipeline.

use rsn_budget::Budget;
use rsn_obs::{catalog_lookup, MetricKind};
use rsn_synth::{augment_ilp, AugmentOptions, Dataflow};

#[test]
fn every_emitted_metric_is_catalogued() {
    rsn_obs::reset();

    // The same probes as a `table1 --json`/`--trace` row on u226: the
    // full pipeline (synthesis, both fault sweeps, area), the BMC spot
    // check (SAT) and an exact-ILP reference on a small dataflow.
    let row = bench::evaluate("u226");
    assert!(row.ft.fault_count > 0);
    let soc = rsn_itc02::by_name("u226").expect("embedded");
    let rsn = rsn_sib::generate(&soc).expect("generate");
    let (checked, _) = bench::bmc_spot_check(&rsn, row.levels + 2, 150, 4);
    assert!(checked > 0, "BMC spot check must run");
    let small =
        rsn_sib::generate(&rsn_itc02::by_name("q12710").expect("embedded")).expect("generate");
    let df = Dataflow::extract(&small);
    assert!(df.len() <= 60, "q12710 stays exact-ILP sized");
    augment_ilp(&df, &AugmentOptions::default()).expect("ilp solves");
    // A budget-starved verify exercises the lint + trip paths.
    let starved = Budget::unlimited().with_work_limit(0);
    let _ = rsn_verify::verify_under(&rsn, rsn_verify::VerifyOptions::default(), &starved);
    // An explained verify of a failing network exercises the root-cause
    // engine (verify.core_size / verify.explain_ns / verify.cone_nodes).
    let failing = {
        use rsn_core::{ControlExpr, RsnBuilder};
        let mut b = RsnBuilder::new("metric-catalog-failing");
        let i = b.add_inputs(1);
        let a = b.add_segment("a", 2);
        let c = b.add_segment("c", 2);
        let m = b.add_mux("m", vec![a, c], vec![ControlExpr::input(i)]);
        b.connect(b.scan_in(), a);
        b.connect(b.scan_in(), c);
        b.connect(m, b.scan_out());
        b.set_select(a, ControlExpr::Const(true));
        b.set_select(c, ControlExpr::Const(true));
        b.finish().expect("valid network")
    };
    let sat = rsn_verify::NetworkSat::build(&failing);
    let unlimited = Budget::unlimited();
    let mut report = rsn_verify::verify_on(
        &failing,
        &sat,
        rsn_verify::VerifyOptions::default(),
        &unlimited,
    );
    assert!(report.error_count() > 0, "fixture must fail verification");
    rsn_verify::explain_report(&failing, &sat, &mut report, &unlimited);

    let snapshot = rsn_obs::metrics_snapshot();
    let mut unknown = Vec::new();
    for (name, kind) in snapshot
        .counters
        .keys()
        .map(|n| (n, MetricKind::Counter))
        .chain(snapshot.gauges.keys().map(|n| (n, MetricKind::Gauge)))
        .chain(
            snapshot
                .histograms
                .keys()
                .map(|n| (n, MetricKind::Histogram)),
        )
    {
        match catalog_lookup(name) {
            Some(k) if k == kind => {}
            Some(k) => unknown.push(format!("{name}: emitted as {kind:?}, catalogued as {k:?}")),
            None => unknown.push(format!("{name}: not in METRIC_CATALOG")),
        }
    }
    assert!(
        unknown.is_empty(),
        "metrics drifted from the catalog (update rsn-obs::METRIC_CATALOG \
         and the README/DESIGN tables together):\n{}",
        unknown.join("\n")
    );

    // The run must actually have exercised every engine family — an
    // empty registry would pass the loop above vacuously.
    for required in [
        "sat.solves",
        "ilp.solves",
        "bmc.queries",
        "fault.faults_simulated",
        "synth.runs",
        "lint.runs",
        "budget.spent{engine=sat}",
        "budget.spent{engine=ilp}",
        "budget.spent{engine=fault}",
    ] {
        assert!(
            snapshot.counters.contains_key(required),
            "expected counter {required} after the end-to-end run"
        );
    }
    for hist in [
        "sat.solve_ns",
        "ilp.node_ns",
        "fault.class_eval_ns",
        "fault.warm_rounds",
        "verify.core_size",
        "verify.explain_ns",
        "verify.cone_nodes",
    ] {
        assert!(
            snapshot.histograms.get(hist).is_some_and(|h| !h.is_empty()),
            "expected non-empty histogram {hist}"
        );
    }
    // The starved verify must have tripped and recorded a backtrace.
    let trips = rsn_obs::budget_trips();
    assert!(
        trips.iter().any(|t| t.engine == "verify"),
        "starved verify should record a budget trip, got {trips:?}"
    );

    rsn_obs::reset();
    assert!(rsn_obs::metrics_snapshot().is_empty());
    assert!(rsn_obs::budget_trips().is_empty());
}
