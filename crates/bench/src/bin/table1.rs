//! Regenerates Table I of the paper (and the auxiliary experiment data).
//!
//! ```text
//! table1 [--bench NAME]... [--section char|sib|ft|area|all] [--timing]
//!        [--paper] [--verify] [--ablation] [--sweep-alpha] [--json PATH]
//!        [--trace PATH] [--prom PATH] [--bench-access PATH]
//!        [--bench-sat PATH] [--budget SECS] [--resume] [--no-collapse]
//! ```
//!
//! With `--trace PATH`, event tracing is switched on for the whole run and
//! a Chrome-trace / Perfetto JSON (span begin/end plus instant events,
//! one `tid` timeline row per worker thread) is written to PATH — open it
//! at <https://ui.perfetto.dev> or `chrome://tracing`. Works with or
//! without `--json`; rows run the same extra BMC/ILP probes either way so
//! SAT and ILP events appear in the trace.
//!
//! With `--prom PATH`, the final metrics snapshot is additionally written
//! in the Prometheus text exposition format (one row's worth when `--json`
//! resets between rows, the whole run otherwise).
//!
//! `--no-collapse` disables ATPG-style fault collapsing in every metric
//! sweep (each fault evaluated individually) — an escape hatch for
//! cross-checking the collapsed fast path; aggregates are identical
//! either way.
//!
//! With `--budget SECS`, every row runs under a fresh wall-clock budget of
//! SECS seconds shared by all of its stages. Budget exhaustion never
//! aborts: metric sweeps keep their evaluated prefix and the row is
//! marked `TIMED OUT`, the augmentation ILP degrades to the greedy
//! heuristic (`DEGRADED`), and the BMC spot check stops early. With
//! `--json`, each row report carries `timed_out` / `degraded` keys.
//!
//! With `--json PATH`, a checkpoint (schema `table1-partial-v1`, path
//! PATH with `.json` replaced by `.partial.json`) is rewritten after
//! every completed row; `--resume` loads it and skips the rows it
//! already contains, so an interrupted run continues where it stopped.
//!
//! With `--verify`, every synthesized fault-tolerant network is statically
//! verified (`rsn-verify`: SAT proofs plus graph passes, including the
//! ineffective-augmentation check); error-severity findings abort the run.
//!
//! Without arguments, the full table is printed over all 13 embedded
//! benchmarks with measured accessibility and overhead values, next to the
//! paper's reference values when `--paper` is given.
//!
//! With `--json PATH`, a machine-readable run report (one JSON object per
//! benchmark row: counters, gauges and the span tree — see the rsn-obs
//! `RunReport` schema) is written to PATH. Small benchmarks additionally
//! run a BMC spot check so SAT solver statistics appear in the report.
//!
//! With `--bench-access PATH`, only the accessibility-engine throughput
//! measurement runs (fault-universe size, class count, seconds and
//! faults/sec for the original and fault-tolerant RSN of each selected
//! benchmark) and a `bench-access-v1` JSON document (`schema_version` 2:
//! per-sweep `classes`/`collapse_ratio` plus the host thread count) is
//! written to PATH next to the recorded pre-refactor seed baseline. When
//! PATH already holds a previous document, the per-sweep faults/sec delta
//! against it is printed before it is overwritten. Defaults to
//! `q12710` + `p93791` when no `--bench` is given.
//!
//! With `--bench-sat PATH`, only the SAT-engine comparison runs: each
//! selected benchmark's verify run and fault-distinguishability miters
//! are solved once serially and once through the portfolio
//! (`RSN_THREADS`, at least 4 workers), and a `bench-sat-v1` JSON
//! document (per-row wall-clock, conflicts, verdict agreement and
//! speedup) is written to PATH. Defaults to `u226` + `p93791` when no
//! `--bench` is given.

use std::collections::{HashMap, HashSet};
use std::env;
use std::time::{Duration, Instant};

use bench::{
    bmc_spot_check, bmc_spot_check_under, evaluate, evaluate_budgeted, evaluate_weighted,
    evaluate_with, format_row, AccessSweep, Row, BENCHMARKS,
};
use rsn_budget::Budget;
use rsn_fault::WeightModel;
use rsn_itc02::by_name;
use rsn_obs::{json::Json, RunReport};
use rsn_sib::generate;
use rsn_synth::{
    augment_greedy, augment_ilp, augment_ilp_under, AugmentOptions, Dataflow, SolverChoice,
    SynthesisOptions,
};

/// The checkpoint path for a `--json PATH` run: `.json` → `.partial.json`.
fn partial_path(json_path: &str) -> String {
    match json_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.partial.json"),
        None => format!("{json_path}.partial.json"),
    }
}

/// The checkpoint schema this binary writes and accepts on `--resume`.
const CHECKPOINT_SCHEMA: &str = "table1-partial-v1";

/// Why a `--resume` checkpoint was refused. Every variant means the
/// checkpoint belongs to a different (or older, or corrupted) run —
/// resuming from it would silently mix incompatible rows.
#[derive(Debug)]
enum CheckpointError {
    /// Not parseable as JSON, or structurally not a checkpoint.
    Malformed { path: String, detail: String },
    /// `schema` is missing or names a different format.
    SchemaMismatch { path: String, found: String },
    /// The checkpoint was written for a different benchmark selection.
    BenchmarkSetMismatch {
        path: String,
        checkpoint: Vec<String>,
        requested: Vec<String>,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Malformed { path, detail } => {
                write!(f, "malformed checkpoint {path}: {detail}")
            }
            CheckpointError::SchemaMismatch { path, found } => write!(
                f,
                "checkpoint {path} has schema {found:?}, expected {CHECKPOINT_SCHEMA:?} \
                 (delete it or rerun without --resume)"
            ),
            CheckpointError::BenchmarkSetMismatch {
                path,
                checkpoint,
                requested,
            } => write!(
                f,
                "checkpoint {path} covers benchmarks {checkpoint:?} but this run selects \
                 {requested:?} (delete it or rerun without --resume)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Loads and validates a `--resume` checkpoint: schema string and
/// benchmark set must match this run before any row is reused.
fn load_checkpoint(
    ppath: &str,
    requested: &[&str],
) -> Result<HashMap<String, Json>, CheckpointError> {
    let text = match std::fs::read_to_string(ppath) {
        Ok(text) => text,
        // No checkpoint is not an error: the run simply starts fresh.
        Err(_) => return Ok(HashMap::new()),
    };
    let doc = rsn_obs::json::parse(&text).map_err(|e| CheckpointError::Malformed {
        path: ppath.to_string(),
        detail: e.to_string(),
    })?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or("<missing>");
    if schema != CHECKPOINT_SCHEMA {
        return Err(CheckpointError::SchemaMismatch {
            path: ppath.to_string(),
            found: schema.to_string(),
        });
    }
    let checkpoint: Vec<String> = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .ok_or_else(|| CheckpointError::Malformed {
            path: ppath.to_string(),
            detail: "no \"benchmarks\" array (checkpoint predates benchmark-set tracking)"
                .to_string(),
        })?;
    if checkpoint
        .iter()
        .map(String::as_str)
        .ne(requested.iter().copied())
    {
        return Err(CheckpointError::BenchmarkSetMismatch {
            path: ppath.to_string(),
            checkpoint,
            requested: requested.iter().map(|s| s.to_string()).collect(),
        });
    }
    let mut resumed = HashMap::new();
    for r in doc.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
        if let Some(n) = r.get("name").and_then(Json::as_str) {
            resumed.insert(n.to_string(), r.clone());
        }
    }
    Ok(resumed)
}

fn run_double(names: &[&str]) {
    println!("\nExtension E1: sampled double-fault accessibility (segments)");
    println!(
        "{:<8} {:>7} {:>11} {:>11} {:>11} {:>11}",
        "SoC", "pairs", "orig worst", "orig avg", "ft worst", "ft avg"
    );
    for name in names {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let ft = rsn_synth::synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        // Stride scaled so each network evaluates ~2000 pairs.
        let f_orig = rsn_fault::fault_universe(&rsn).len();
        let f_ft = rsn_fault::fault_universe(&ft.rsn).len();
        let orig = rsn_fault::analyze_double_sampled(
            &rsn,
            rsn_fault::HardeningProfile::unhardened(),
            (f_orig * f_orig / 4000).max(1),
        );
        let hard = rsn_fault::analyze_double_sampled(
            &ft.rsn,
            rsn_fault::HardeningProfile::hardened(),
            (f_ft * f_ft / 4000).max(1),
        );
        println!(
            "{name:<8} {:>7} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
            hard.pairs,
            orig.worst_segments,
            orig.avg_segments,
            hard.worst_segments,
            hard.avg_segments
        );
    }
}

/// Pre-refactor throughput, measured at the seed commit on the reference
/// machine (1 hardware thread): `(name, network, faults, faults/sec)`.
/// Kept in `BENCH_access.json` so the perf trajectory of the
/// accessibility engine stays visible across PRs. Only sweeps that were
/// actually timed at the seed are recorded (q12710's FT sweep was not).
const SEED_BASELINE: [(&str, &str, usize, f64); 3] = [
    ("q12710", "sib", 480, 55_840.0),
    ("p93791", "sib", 12_212, 2_560.0),
    ("p93791", "ft", 26_608, 310.0),
];

fn sweep_json(s: &AccessSweep) -> Json {
    let mut o = Json::obj();
    o.set("faults", Json::Num(s.faults as f64));
    o.set("classes", Json::Num(s.classes as f64));
    o.set("collapse_ratio", Json::Num(s.collapse_ratio));
    o.set("seconds", Json::Num(s.seconds));
    o.set("faults_per_sec", Json::Num(s.faults_per_sec));
    o.set("avg_segments", Json::Num(s.avg_segments));
    o
}

/// Per-sweep `faults_per_sec` values of a previously written
/// `--bench-access` document, keyed `(name, "sib"|"ft")`.
fn previous_throughput(path: &str) -> HashMap<(String, String), f64> {
    let mut out = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let Ok(doc) = rsn_obs::json::parse(&text) else {
        return out;
    };
    for row in doc.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(name) = row.get("name").and_then(Json::as_str) else {
            continue;
        };
        for network in ["sib", "ft"] {
            if let Some(fps) = row
                .get(network)
                .and_then(|s| s.get("faults_per_sec"))
                .and_then(Json::as_f64)
            {
                out.insert((name.to_string(), network.to_string()), fps);
            }
        }
    }
    out
}

fn run_bench_access(names: &[&str], path: &str, collapse: bool) {
    let previous = previous_throughput(path);
    println!("Accessibility-engine throughput (fault universe, full sweep)");
    println!(
        "{:<8} {:>10} {:>7} {:>9} {:>12} | {:>10} {:>7} {:>9} {:>12}",
        "SoC", "sib flts", "cls", "sib s", "sib flt/s", "ft flts", "cls", "ft s", "ft flt/s"
    );
    let mut rows: Vec<Json> = Vec::new();
    for name in names {
        let b = bench::bench_access_with(name, collapse);
        println!(
            "{name:<8} {:>10} {:>7} {:>9.3} {:>12.0} | {:>10} {:>7} {:>9.3} {:>12.0}",
            b.sib.faults,
            b.sib.classes,
            b.sib.seconds,
            b.sib.faults_per_sec,
            b.ft.faults,
            b.ft.classes,
            b.ft.seconds,
            b.ft.faults_per_sec
        );
        for (network, sweep) in [("sib", &b.sib), ("ft", &b.ft)] {
            if let Some(&old) = previous.get(&(name.to_string(), network.to_string())) {
                if old > 0.0 {
                    println!(
                        "         {network}: {old:.0} -> {:.0} faults/s ({:+.1}%)",
                        sweep.faults_per_sec,
                        100.0 * (sweep.faults_per_sec - old) / old
                    );
                }
            }
        }
        let mut row = Json::obj();
        row.set("name", Json::Str(b.name.clone()));
        row.set("sib", sweep_json(&b.sib));
        row.set("ft", sweep_json(&b.ft));
        rows.push(row);
    }
    let mut seed = Json::obj();
    for (name, network, faults, fps) in SEED_BASELINE {
        let mut sweep = Json::obj();
        sweep.set("faults", Json::Num(faults as f64));
        sweep.set("faults_per_sec", Json::Num(fps));
        if let Some(entry) = seed.get(name) {
            let mut entry = entry.clone();
            entry.set(network, sweep);
            seed.set(name, entry);
        } else {
            let mut entry = Json::obj();
            entry.set(network, sweep);
            seed.set(name, entry);
        }
    }
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("bench-access-v1".to_string()));
    // Bumped when a field is added or its meaning changes; v2 added
    // classes/collapse_ratio per sweep plus host_threads.
    doc.set("schema_version", Json::Num(2.0));
    doc.set(
        "host_threads",
        Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
    );
    doc.set("collapse", Json::Bool(collapse));
    doc.set(
        "generated_by",
        Json::Str("table1 --bench-access".to_string()),
    );
    doc.set("seed_baseline", seed);
    doc.set("rows", Json::Arr(rows));
    std::fs::write(path, doc.to_string_pretty(2)).expect("write bench-access json");
    println!("wrote access throughput to {path}");
}

fn run_bench_sat(names: &[&str], path: &str) {
    // The acceptance bar is "4+ threads": honor RSN_THREADS when it asks
    // for more, never measure the portfolio below four workers.
    let threads = rsn_budget::default_threads().max(4);
    println!("SAT engine: serial vs portfolio ({threads} threads)");
    println!(
        "{:<8} {:<17} {:>9} {:>9} {:>9} {:>9} {:>6} {:>8}",
        "SoC", "family", "ser s", "ser cfl", "par s", "par cfl", "agree", "speedup"
    );
    let mut rows: Vec<Json> = Vec::new();
    for name in names {
        for r in bench::bench_sat(name, threads) {
            println!(
                "{:<8} {:<17} {:>9.3} {:>9} {:>9.3} {:>9} {:>6} {:>7.2}x",
                r.name,
                r.family,
                r.serial_seconds,
                r.serial_conflicts,
                r.parallel_seconds,
                r.parallel_conflicts,
                r.agreement,
                r.speedup
            );
            let mut serial = Json::obj();
            serial.set("seconds", Json::Num(r.serial_seconds));
            serial.set("conflicts", Json::Num(r.serial_conflicts as f64));
            let mut parallel = Json::obj();
            parallel.set("seconds", Json::Num(r.parallel_seconds));
            parallel.set("conflicts", Json::Num(r.parallel_conflicts as f64));
            let mut row = Json::obj();
            row.set("name", Json::Str(r.name.clone()));
            row.set("family", Json::Str(r.family.to_string()));
            row.set("instance", Json::Str(r.instance.clone()));
            row.set("threads", Json::Num(r.threads as f64));
            row.set("serial", serial);
            row.set("parallel", parallel);
            row.set("agreement", Json::Bool(r.agreement));
            row.set("speedup", Json::Num(r.speedup));
            rows.push(row);
        }
    }
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("bench-sat-v1".to_string()));
    doc.set("schema_version", Json::Num(1.0));
    doc.set(
        "host_threads",
        Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
    );
    doc.set("threads", Json::Num(threads as f64));
    doc.set("generated_by", Json::Str("table1 --bench-sat".to_string()));
    doc.set("rows", Json::Arr(rows));
    std::fs::write(path, doc.to_string_pretty(2)).expect("write bench-sat json");
    println!("wrote SAT engine comparison to {path}");
}

fn run_latency(names: &[&str]) {
    println!("\nExperiment T1-latency: access latency (cycles) original vs fault-tolerant RSN");
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "SoC", "orig avg", "ft avg", "ratio", "orig max", "ft max", "ratio"
    );
    for name in names {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let ft = rsn_synth::synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let orig = rsn.latency_report();
        let ftr = ft.rsn.latency_report();
        let (oa, fa) = (orig.average(), ftr.average());
        let (om, fm) = (
            orig.max().unwrap_or(0) as f64,
            ftr.max().unwrap_or(0) as f64,
        );
        println!(
            "{name:<8} {oa:>10.1} {fa:>10.1} {:>8.3} {om:>10.0} {fm:>10.0} {:>8.3}",
            fa / oa,
            fm / om
        );
    }
}

fn header() {
    println!(
        "{:<8} {:>3} {:>2} {:>4} {:>5} {:>6} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>6} {:>6} {:>6} | {:>5} {:>5} {:>5} {:>5}",
        "SoC", "mod", "lv", "mux", "seg", "bits",
        "bW", "bA", "sW", "sA",
        "bW", "bA", "sW", "sA",
        "mux", "bits", "nets", "area",
    );
    println!(
        "{:<8} {:>3} {:>2} {:>4} {:>5} {:>6} | {:^23} | {:^27} | {:^23}",
        "", "", "", "", "", "", "SIB-RSN access.", "FT-RSN accessibility", "overhead ratios",
    );
    println!("{}", "-".repeat(120));
}

fn paper_row(row: &Row) -> String {
    let p = row.paper;
    format!(
        "{:<8} {:>3} {:>2} {:>4} {:>5} {:>6} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} | {:>5.2} {:>6.3} {:>6.3} {:>6.3} | {:>5.2} {:>5.2} {:>5.2} {:>5.2}   (paper)",
        "", p.modules, p.levels, p.mux, p.segments, p.bits,
        0.0, p.sib_bits_avg, 0.0, p.sib_seg_avg,
        p.ft_bits_worst, p.ft_bits_avg, p.ft_seg_worst, p.ft_seg_avg,
        p.ratio_mux, p.ratio_bits, p.ratio_nets, p.ratio_area,
    )
}

fn run_ablation(names: &[&str]) {
    println!("\nAblation A1: ILP optimum vs greedy heuristic (augmentation cost)");
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>6}",
        "SoC", "ilp cost", "greedy", "gap %", "cuts"
    );
    for name in names {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let df = Dataflow::extract(&rsn);
        if df.len() > 60 {
            println!(
                "{name:<8} {:>10} {:>10} {:>8} {:>6}",
                "-", "-", "-", "(too large for exact ILP)"
            );
            continue;
        }
        let opts = AugmentOptions::default();
        let greedy = augment_greedy(&df, &opts);
        let ilp = augment_ilp(&df, &opts).expect("ilp solves");
        let gap = if ilp.cost > 0.0 {
            100.0 * (greedy.cost - ilp.cost) / ilp.cost
        } else {
            0.0
        };
        println!(
            "{name:<8} {:>10.2} {:>10.2} {:>8.2} {:>6}",
            ilp.cost, greedy.cost, gap, ilp.cut_rounds
        );
    }
}

fn run_alpha_sweep(names: &[&str]) {
    println!("\nAblation A2: long-line penalty sweep (alpha) — added edges / cost / area ratio");
    println!(
        "{:<8} {:>6} {:>8} {:>10} {:>8}",
        "SoC", "alpha", "edges", "cost", "area"
    );
    for name in names {
        for alpha in [0.0, 0.05, 0.1, 0.5, 1.0] {
            let mut opts = SynthesisOptions::new();
            opts.augment.alpha = alpha;
            opts.solver = SolverChoice::Greedy;
            let row = evaluate_with(name, &opts);
            println!(
                "{name:<8} {alpha:>6.2} {:>8} {:>10.2} {:>8.3}",
                row.synthesis.report.added_edges,
                row.synthesis.augmentation.cost,
                row.overhead.area_ratio
            );
        }
    }
}

/// Folds freshly drained trace threads into the run-wide accumulator,
/// merging by `tid` so each worker keeps one timeline row even when the
/// buffers are drained once per benchmark row.
fn merge_trace(acc: &mut Vec<rsn_obs::TraceThread>, drained: Vec<rsn_obs::TraceThread>) {
    for t in drained {
        match acc.iter_mut().find(|a| a.tid == t.tid) {
            Some(a) => {
                a.events.extend(t.events);
                a.dropped += t.dropped;
            }
            None => acc.push(t),
        }
    }
    acc.sort_by_key(|t| t.tid);
}

/// Writes the accumulated events as Chrome-trace / Perfetto JSON.
fn write_trace(path: &str, threads: &[rsn_obs::TraceThread]) {
    let events: usize = threads.iter().map(|t| t.events.len()).sum();
    let dropped: u64 = threads.iter().map(|t| t.dropped).sum();
    std::fs::write(path, rsn_obs::chrome_trace(threads).to_string_pretty(2))
        .expect("write trace json");
    println!(
        "wrote {events} trace event(s) across {} thread(s) to {path} ({dropped} dropped)",
        threads.len()
    );
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut names: Vec<&str> = Vec::new();
    let mut show_paper = false;
    let mut timing = false;
    let mut verify = false;
    let mut ablation = false;
    let mut sweep_alpha = false;
    let mut latency = false;
    let mut double = false;
    let mut weights = WeightModel::Ports;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut bench_access_path: Option<String> = None;
    let mut bench_sat_path: Option<String> = None;
    let mut budget_secs: Option<f64> = None;
    let mut resume = false;
    let mut collapse = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                let wanted = args.get(i).expect("--bench needs a name").clone();
                let known: HashSet<&str> = BENCHMARKS.iter().copied().collect();
                let name = BENCHMARKS
                    .iter()
                    .find(|&&b| b == wanted)
                    .unwrap_or_else(|| panic!("unknown benchmark {wanted}; known: {known:?}"));
                names.push(name);
            }
            "--paper" => show_paper = true,
            "--timing" => timing = true,
            "--verify" => verify = true,
            "--ablation" => ablation = true,
            "--sweep-alpha" => sweep_alpha = true,
            "--latency" => latency = true,
            "--double" => double = true,
            "--weights" => {
                i += 1;
                weights = match args.get(i).map(String::as_str) {
                    Some("ports") => WeightModel::Ports,
                    Some("cells") => WeightModel::Cells,
                    other => panic!("--weights ports|cells, got {other:?}"),
                };
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json needs a path").clone());
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).expect("--trace needs a path").clone());
            }
            "--prom" => {
                i += 1;
                prom_path = Some(args.get(i).expect("--prom needs a path").clone());
            }
            "--bench-access" => {
                i += 1;
                bench_access_path = Some(args.get(i).expect("--bench-access needs a path").clone());
            }
            "--bench-sat" => {
                i += 1;
                bench_sat_path = Some(args.get(i).expect("--bench-sat needs a path").clone());
            }
            "--budget" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .expect("--budget needs seconds")
                    .parse()
                    .expect("--budget needs a number of seconds");
                assert!(secs >= 0.0, "--budget must be non-negative");
                budget_secs = Some(secs);
            }
            "--resume" => resume = true,
            "--no-collapse" => collapse = false,
            "--section" => {
                i += 1; // sections are printed together; flag kept for CLI
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    if trace_path.is_some() {
        rsn_obs::set_trace_enabled(true);
    }
    if let Some(path) = bench_sat_path {
        let sel = if names.is_empty() {
            vec!["u226", "p93791"]
        } else {
            names.clone()
        };
        run_bench_sat(&sel, &path);
        if let Some(tpath) = &trace_path {
            write_trace(tpath, &rsn_obs::trace_drain());
        }
        return;
    }
    if let Some(path) = bench_access_path {
        let sel = if names.is_empty() {
            vec!["q12710", "p93791"]
        } else {
            names
        };
        run_bench_access(&sel, &path, collapse);
        if let Some(tpath) = &trace_path {
            write_trace(tpath, &rsn_obs::trace_drain());
        }
        return;
    }
    if names.is_empty() {
        names = BENCHMARKS.to_vec();
    }

    if ablation {
        run_ablation(&names);
        return;
    }
    if latency {
        run_latency(&names);
        return;
    }
    if double {
        run_double(&names);
        return;
    }
    if sweep_alpha {
        let small = if names.len() == BENCHMARKS.len() {
            vec!["u226", "d281", "x1331"]
        } else {
            names.clone()
        };
        run_alpha_sweep(&small);
        return;
    }

    // Checkpoint rows completed by an interrupted `--json` run, by name.
    let mut resumed: HashMap<String, Json> = HashMap::new();
    if resume {
        let path = json_path
            .as_deref()
            .expect("--resume requires --json PATH (the checkpoint lives next to it)");
        let ppath = partial_path(path);
        match load_checkpoint(&ppath, &names) {
            Ok(rows) if rows.is_empty() => {
                println!("resuming: no checkpoint at {ppath}, starting fresh")
            }
            Ok(rows) => {
                resumed = rows;
                println!("resuming: {} completed row(s) in {ppath}", resumed.len());
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    header();
    let t0 = Instant::now();
    let mut reports: Vec<Json> = Vec::new();
    let mut trace_threads: Vec<rsn_obs::TraceThread> = Vec::new();
    // Rows run the extra BMC/ILP probes whenever their telemetry has
    // somewhere to land — the JSON report, the event trace, or both.
    let obs_probes = json_path.is_some() || trace_path.is_some();
    for name in &names {
        if json_path.is_some() {
            if let Some(r) = resumed.remove(*name) {
                println!("{name:<8} (resumed from checkpoint)");
                reports.push(r);
                continue;
            }
        }
        if trace_path.is_some() {
            // Drain per row (before any reset) so ring buffers cannot
            // overflow across a long multi-row run.
            merge_trace(&mut trace_threads, rsn_obs::trace_drain());
        }
        if json_path.is_some() {
            // One report per row: clear global counters/spans between rows.
            rsn_obs::reset();
        }
        // A fresh budget per row: one slow benchmark cannot starve the
        // rows after it.
        let row_budget = budget_secs
            .map(|secs| Budget::unlimited().with_deadline(Duration::from_secs_f64(secs)));
        let row = if !collapse {
            let opts = if verify {
                rsn_synth::SynthesisOptions::verified()
            } else {
                rsn_synth::SynthesisOptions::new()
            };
            let b = row_budget.clone().unwrap_or_else(Budget::unlimited);
            bench::evaluate_budgeted_with_collapse(name, &opts, weights, &b, false)
        } else if let Some(b) = &row_budget {
            let opts = if verify {
                rsn_synth::SynthesisOptions::verified()
            } else {
                rsn_synth::SynthesisOptions::new()
            };
            evaluate_budgeted(name, &opts, weights, b)
        } else if verify {
            // Post-synthesis static verification gates every row:
            // error-severity diagnostics abort inside `synthesize`.
            evaluate_weighted(name, &rsn_synth::SynthesisOptions::verified(), weights)
        } else if weights == WeightModel::Ports {
            evaluate(name)
        } else {
            evaluate_weighted(name, &rsn_synth::SynthesisOptions::new(), weights)
        };
        println!("{}", format_row(&row));
        if row.timed_out {
            println!(
                "         TIMED OUT: metric sweeps partial ({} + {} faults skipped)",
                row.sib.skipped, row.ft.skipped
            );
        }
        if row.degraded {
            println!("         DEGRADED: augmentation ILP budget exhausted, greedy fallback used");
        }
        if let Some(v) = &row.synthesis.verification {
            println!(
                "         verified: {} error(s), {} warning(s), {} SAT queries",
                v.error_count(),
                v.warning_count(),
                v.sat_queries
            );
        }
        if show_paper {
            println!("{}", paper_row(&row));
        }
        if timing {
            println!(
                "         synthesis {:.2?}, metric {:.2?}, faults orig {} / ft {}",
                row.synthesis_time, row.metric_time, row.sib.fault_count, row.ft.fault_count
            );
        }
        if obs_probes {
            // Size-gated BMC validation of the original network: the only
            // stage of the default pipeline that exercises the SAT solver.
            let soc = by_name(name).expect("embedded");
            let rsn = generate(&soc).expect("generate");
            let steps = row.levels + 2;
            let (checked, mismatches) = match &row_budget {
                Some(b) => bmc_spot_check_under(&rsn, steps, 150, 8, b),
                None => bmc_spot_check(&rsn, steps, 150, 8),
            };
            if mismatches > 0 {
                eprintln!("warning: {name}: {mismatches}/{checked} BMC spot checks disagree");
            }
            // ILP reference probe: exact on small dataflows (same gate as
            // the ablation), node-capped on mid-size ones, so traced and
            // reported rows record branch-and-bound telemetry even where
            // the Auto solver picks the greedy heuristic. Larger SoCs
            // skip it — even the root LP relaxation gets expensive there.
            let df = Dataflow::extract(&rsn);
            if df.len() <= 60 {
                let _s = rsn_obs::Span::enter("ilp_reference");
                let _ = match &row_budget {
                    Some(b) => augment_ilp_under(&df, &AugmentOptions::default(), b),
                    None => augment_ilp(&df, &AugmentOptions::default()),
                };
            } else if df.len() <= 150 {
                let _s = rsn_obs::Span::enter("ilp_reference");
                let capped = Budget::unlimited().with_work_limit(500);
                let _ = augment_ilp_under(&df, &AugmentOptions::default(), &capped);
            }
        }
        if let Some(path) = &json_path {
            let mut report = RunReport::capture(name).to_json_value();
            if budget_secs.is_some() {
                report.set("timed_out", Json::Bool(row.timed_out));
                report.set("degraded", Json::Bool(row.degraded));
            }
            reports.push(report);
            // Rewrite the checkpoint after every row so an interrupted run
            // can pick up with `--resume`.
            let mut doc = Json::obj();
            doc.set("schema", Json::Str(CHECKPOINT_SCHEMA.to_string()));
            doc.set(
                "benchmarks",
                Json::Arr(names.iter().map(|n| Json::Str(n.to_string())).collect()),
            );
            doc.set("rows", Json::Arr(reports.clone()));
            std::fs::write(partial_path(path), doc.to_string_pretty(2))
                .expect("write checkpoint json");
        }
    }
    if timing {
        println!("\ntotal wall clock: {:.2?}", t0.elapsed());
    }
    if let Some(path) = &json_path {
        let doc = Json::Arr(reports);
        std::fs::write(path, doc.to_string_pretty(2)).expect("write json report");
        println!("wrote run report to {path}");
    }
    if let Some(path) = &prom_path {
        // Written from the live registry: the final row's metrics under
        // `--json` (which resets between rows), the whole run otherwise.
        std::fs::write(
            path,
            rsn_obs::render_prometheus(&rsn_obs::metrics_snapshot()),
        )
        .expect("write prometheus text");
        println!("wrote metrics exposition to {path}");
    }
    if let Some(path) = &trace_path {
        merge_trace(&mut trace_threads, rsn_obs::trace_drain());
        write_trace(path, &trace_threads);
    }
}
