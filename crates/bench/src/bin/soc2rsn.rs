//! `soc2rsn` — end-to-end command-line flow: ITC'02 SoC description in,
//! (fault-tolerant) RSN netlists out.
//!
//! ```text
//! soc2rsn <input.soc | embedded-name> [--ft] [--out DIR]
//!         [--solver auto|ilp|greedy] [--alpha F] [--no-ports]
//!         [--report] [--lint] [--verify]
//! ```
//!
//! Writes `<name>.v` (structural Verilog) and `<name>.icl` (IEEE 1687
//! ICL); with `--ft`, synthesizes the fault-tolerant network first and
//! writes `<name>_ft.*` as well. `--report` prints the fault-tolerance
//! metric of everything it produced.
//!
//! `--lint` statically verifies every emitted network with `rsn-verify`
//! (SAT proofs over all configurations plus graph passes) and prints the
//! structured diagnostics; error-severity findings make the exit code
//! non-zero. `--verify` additionally gates the synthesis itself: the
//! fault-tolerant network is verified (including the
//! ineffective-augmentation check) before it is accepted.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use rsn_export::{to_icl, to_verilog};
use rsn_fault::{analyze_parallel, HardeningProfile};
use rsn_itc02::{by_name, parse_soc};
use rsn_sib::generate;
use rsn_synth::{synthesize, SolverChoice, SynthesisOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: soc2rsn <input.soc | embedded-name> [--ft] [--out DIR] \
         [--solver auto|ilp|greedy] [--alpha F] [--no-ports] [--report] \
         [--lint] [--verify]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(input) = args.first() else {
        return usage();
    };
    let mut ft = false;
    let mut out_dir = PathBuf::from(".");
    let mut report = false;
    let mut lint = false;
    let mut opts = SynthesisOptions::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ft" => ft = true,
            "--report" => report = true,
            "--lint" => lint = true,
            "--verify" => opts.verify = true,
            "--no-ports" => opts.secondary_ports = false,
            "--out" => {
                i += 1;
                let Some(d) = args.get(i) else { return usage() };
                out_dir = PathBuf::from(d);
            }
            "--alpha" => {
                i += 1;
                let Some(a) = args.get(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                opts.augment.alpha = a;
            }
            "--solver" => {
                i += 1;
                opts.solver = match args.get(i).map(String::as_str) {
                    Some("auto") => SolverChoice::Auto,
                    Some("ilp") => SolverChoice::Ilp,
                    Some("greedy") => SolverChoice::Greedy,
                    _ => return usage(),
                };
            }
            _ => return usage(),
        }
        i += 1;
    }

    // Load: embedded benchmark name or .soc file.
    let soc = match by_name(input) {
        Some(s) => s,
        None => match fs::read_to_string(input) {
            Ok(text) => match parse_soc(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let rsn = match generate(&soc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let mut lint_errors = 0usize;
    // (name, network, selects materialized): placeholder selects on large
    // networks are expected to disagree with path membership, so lint
    // skips select checks for them just like the synthesis-time gate.
    let mut emitted: Vec<(String, rsn_core::Rsn, bool)> =
        vec![(soc.name.clone(), rsn.clone(), true)];
    if ft {
        match synthesize(&rsn, &opts) {
            Ok(result) => {
                println!(
                    "synthesized: +{} muxes, +{} bits, {} cut rounds ({})",
                    result.report.added_muxes,
                    result.report.added_bits,
                    result.report.cut_rounds,
                    if result.report.used_ilp {
                        "ILP"
                    } else {
                        "greedy"
                    }
                );
                let materialized = result.report.selects_materialized;
                emitted.push((format!("{}_ft", soc.name), result.rsn, materialized));
            }
            Err(e) => {
                eprintln!("error: synthesis failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for (name, network, selects_materialized) in &emitted {
        let v = out_dir.join(format!("{name}.v"));
        let icl = out_dir.join(format!("{name}.icl"));
        if let Err(e) = fs::write(&v, to_verilog(network)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = fs::write(&icl, to_icl(network)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "{name}: {} segments, {} muxes, {} bits -> {} / {}",
            network.segments().count(),
            network.muxes().count(),
            network.total_bits(),
            v.display(),
            icl.display()
        );
        if lint {
            let vopts = if *selects_materialized {
                rsn_verify::VerifyOptions::default()
            } else {
                rsn_verify::VerifyOptions::without_select_checks()
            };
            let vreport = rsn_verify::verify_with(network, vopts);
            print!("{}", indent(&vreport.render()));
            lint_errors += vreport.error_count();
        }
        if report {
            let profile = if name.ends_with("_ft") {
                HardeningProfile::hardened()
            } else {
                HardeningProfile::unhardened()
            };
            let m = analyze_parallel(network, profile);
            println!("  metric: {m}");
        }
    }
    if lint_errors > 0 {
        eprintln!("error: static verification found {lint_errors} error-severity diagnostic(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  lint: {l}\n"))
        .collect::<String>()
}
