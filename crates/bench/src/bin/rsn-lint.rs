//! `rsn-lint` — static verification front-end for RSN models.
//!
//! ```text
//! rsn-lint [TARGET ...] [--ft] [--explain] [--json] [--quiet]
//! ```
//!
//! Each `TARGET` is one of
//!
//! * an embedded ITC'02 benchmark name (`u226`, `p93791`, ...),
//! * a path to an ITC'02 `.soc` file (generated into a SIB-RSN first),
//! * a path to an IEEE 1687 `.icl` file (as written by `soc2rsn`),
//! * `examples` — the built-in example networks (Fig. 2, chain, SIB tree).
//!
//! Without targets, `examples` plus the full embedded suite is verified.
//!
//! Every network runs through `rsn-verify`: SAT proofs of select/path
//! agreement, select satisfiability, multiplexer decode health and
//! control-register controllability over *all* configurations, plus the
//! structural and control-cycle graph passes. With `--ft`, the
//! fault-tolerant synthesis runs first and its output is verified instead
//! (select checks are skipped automatically when selects are not
//! materialized). `--explain` attaches a root-cause explanation to every
//! diagnostic: a minimal UNSAT core mapped back to the structural
//! elements (cut nodes/edges, forcing control bits) plus repair hints.
//! `--json` prints one JSON report object per network; explanations are
//! embedded under each diagnostic's `"explanation"` key.
//!
//! Note that an `.icl` file exported from a synthesis whose selects were
//! *not* materialized carries placeholder `Select := 1'b1` predicates;
//! linting such a file reports the resulting select/path mismatches,
//! which is a true statement about the netlist as written.
//!
//! Exit codes: `0` — clean; `1` — at least one error-severity finding;
//! `2` — tool failure (unknown target, unreadable or unparsable input,
//! failed synthesis, bad flags).

use std::env;
use std::fs;
use std::process::ExitCode;

use rsn_budget::Budget;
use rsn_core::{examples, Rsn};
use rsn_export::from_icl;
use rsn_itc02::{by_name, parse_soc, suite};
use rsn_sib::generate;
use rsn_synth::{synthesize, SynthesisOptions};
use rsn_verify::{explain_report, NetworkSat, VerifyOptions, VerifyReport};

/// Findings present (exit 1) — distinct from tool failure (exit 2).
const EXIT_FINDINGS: u8 = 1;
/// Unknown target, parse failure, failed synthesis, bad flags (exit 2).
const EXIT_TOOL_ERROR: u8 = 2;

fn usage(code: u8) -> ExitCode {
    eprintln!("usage: rsn-lint [TARGET ...] [--ft] [--explain] [--json] [--quiet]");
    eprintln!("  TARGET: embedded SoC name | file.soc | file.icl | examples");
    eprintln!("  exit codes: 0 clean, 1 findings, 2 tool error");
    ExitCode::from(code)
}

fn load(target: &str) -> Result<Vec<Rsn>, String> {
    if target == "examples" {
        return Ok(vec![
            examples::fig2(),
            examples::chain(4, 8),
            examples::sib_tree(2, 2, 4),
        ]);
    }
    if let Some(soc) = by_name(target) {
        return generate(&soc).map(|r| vec![r]).map_err(|e| e.to_string());
    }
    if target.ends_with(".icl") {
        let text = fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        return from_icl(&text).map(|r| vec![r]).map_err(|e| e.to_string());
    }
    if target.ends_with(".soc") {
        let text = fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        let soc = parse_soc(&text).map_err(|e| e.to_string())?;
        return generate(&soc).map(|r| vec![r]).map_err(|e| e.to_string());
    }
    Err(format!(
        "unknown target {target} (not an embedded SoC, .soc or .icl file)"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut targets: Vec<String> = Vec::new();
    let mut ft = false;
    let mut explain = false;
    let mut json = false;
    let mut quiet = false;
    for a in &args {
        match a.as_str() {
            "--ft" => ft = true,
            "--explain" => explain = true,
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => return usage(0),
            flag if flag.starts_with("--") => return usage(EXIT_TOOL_ERROR),
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("examples".to_string());
        targets.extend(suite().into_iter().map(|s| s.name));
    }

    let budget = Budget::unlimited();
    let mut errors = 0usize;
    let mut reports: Vec<VerifyReport> = Vec::new();
    for target in &targets {
        let networks = match load(target) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_TOOL_ERROR);
            }
        };
        for rsn in networks {
            let (network, vopts) = if ft {
                let result = match synthesize(&rsn, &SynthesisOptions::new()) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: synthesis of {} failed: {e}", rsn.name());
                        return ExitCode::from(EXIT_TOOL_ERROR);
                    }
                };
                let vopts = if result.report.selects_materialized {
                    VerifyOptions::default()
                } else {
                    VerifyOptions::without_select_checks()
                };
                (result.rsn, vopts)
            } else {
                (rsn, VerifyOptions::default())
            };
            let report = if explain {
                let sat = NetworkSat::build(&network);
                let mut report = rsn_verify::verify_on(&network, &sat, vopts, &budget);
                explain_report(&network, &sat, &mut report, &budget);
                report
            } else {
                rsn_verify::verify_with(&network, vopts)
            };
            errors += report.error_count();
            if json {
                println!("{}", report.to_json().to_string_pretty(2));
            } else if !quiet || !report.diagnostics.is_empty() {
                print!("{}", report.render());
            }
            reports.push(report);
        }
    }

    if !json {
        let warnings: usize = reports.iter().map(VerifyReport::warning_count).sum();
        println!(
            "verified {} network(s): {} error(s), {} warning(s)",
            reports.len(),
            errors,
            warnings
        );
    }
    if errors > 0 {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::SUCCESS
    }
}
