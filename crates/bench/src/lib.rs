//! Shared harness for regenerating the paper's evaluation (Table I and
//! the figures) over the embedded ITC'02 suite.
//!
//! The binary `table1` prints the full table (and with `--json` a
//! machine-readable run report per row). The functions here run one SoC
//! through the complete flow: SIB-RSN generation → fault-tolerance metric
//! of the original → synthesis → metric of the fault-tolerant RSN → area
//! accounting.

use std::time::{Duration, Instant};

use rsn_budget::Budget;
use rsn_core::Rsn;
use rsn_fault::{
    analyze_faults_on, analyze_parallel_budgeted, fault_universe_weighted, AccessEngine,
    FaultToleranceReport, HardeningProfile, WeightModel,
};
use rsn_itc02::{by_name, TableTargets};
use rsn_sib::generate;
use rsn_synth::area::{costs, AreaModel, Overhead};
use rsn_synth::{synthesize, synthesize_under, SynthesisOptions, SynthesisResult};

/// One evaluated row of Table I: characteristics, accessibility of the
/// original and fault-tolerant RSN, and overhead ratios.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Module count of the SoC.
    pub modules: usize,
    /// Hierarchy levels of the RSN.
    pub levels: usize,
    /// Multiplexers in the original RSN.
    pub mux: usize,
    /// Segments in the original RSN.
    pub segments: usize,
    /// Scan bits in the original RSN.
    pub bits: u64,
    /// Metric of the original SIB-RSN.
    pub sib: FaultToleranceReport,
    /// Metric of the fault-tolerant RSN.
    pub ft: FaultToleranceReport,
    /// Overhead ratios FT/original.
    pub overhead: Overhead,
    /// Wall-clock time of the synthesis step.
    pub synthesis_time: Duration,
    /// Wall-clock time of both metric evaluations.
    pub metric_time: Duration,
    /// Paper reference values.
    pub paper: &'static TableTargets,
    /// Synthesis diagnostics.
    pub synthesis: SynthesisResult,
    /// `true` if a row budget expired before either metric sweep covered
    /// its full fault universe: the accessibility columns are partial.
    pub timed_out: bool,
    /// `true` if a row budget forced the synthesis to degrade from the
    /// exact ILP to the greedy heuristic.
    pub degraded: bool,
}

/// Runs the full pipeline for one embedded benchmark.
///
/// # Panics
///
/// Panics if `name` is not one of the embedded benchmarks or any pipeline
/// stage fails (the embedded suite is expected to succeed end to end).
pub fn evaluate(name: &str) -> Row {
    evaluate_with(name, &SynthesisOptions::new())
}

/// Runs the full pipeline with explicit synthesis options.
///
/// # Panics
///
/// See [`evaluate`].
pub fn evaluate_with(name: &str, opts: &SynthesisOptions) -> Row {
    evaluate_weighted(name, opts, WeightModel::Ports)
}

/// Full pipeline with an explicit fault-class weight model (experiment
/// T1-weights: sensitivity of the averages to cell- vs port-level
/// weighting).
pub fn evaluate_weighted(name: &str, opts: &SynthesisOptions, model: WeightModel) -> Row {
    evaluate_budgeted(name, opts, model, &Budget::unlimited())
}

/// Full pipeline bounded by a per-row [`Budget`] shared by every stage.
///
/// Degradation is fail-soft: a starved metric sweep keeps its evaluated
/// prefix and sets [`Row::timed_out`]; a starved augmentation ILP falls
/// back to the greedy heuristic and sets [`Row::degraded`]. With an
/// unlimited budget the row is identical to [`evaluate_weighted`].
///
/// # Panics
///
/// See [`evaluate`]; budget exhaustion never panics.
pub fn evaluate_budgeted(
    name: &str,
    opts: &SynthesisOptions,
    model: WeightModel,
    budget: &Budget,
) -> Row {
    evaluate_budgeted_with_collapse(name, opts, model, budget, true)
}

/// [`evaluate_budgeted`] with fault collapsing switched on or off for
/// both metric sweeps — `table1 --no-collapse` routes here.
pub fn evaluate_budgeted_with_collapse(
    name: &str,
    opts: &SynthesisOptions,
    model: WeightModel,
    budget: &Budget,
    collapse: bool,
) -> Row {
    let pipeline = rsn_obs::Span::enter("pipeline");
    let soc = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let paper = rsn_itc02::table_targets(name).expect("paper row exists");
    let rsn = rsn_obs::timed("generate", || {
        generate(&soc).expect("SIB generation succeeds on embedded suite")
    });
    let sweep = |rsn: &Rsn, profile: HardeningProfile| {
        if collapse {
            analyze_parallel_budgeted(rsn, profile, model, budget)
        } else {
            rsn_fault::analyze_parallel_budgeted_uncollapsed(rsn, profile, model, budget)
        }
    };

    let t0 = Instant::now();
    let sib = {
        let _s = pipeline.child("metric_sib");
        sweep(&rsn, HardeningProfile::unhardened())
    };
    let synth_t0 = Instant::now();
    let synthesis = rsn_obs::timed("synth", || {
        synthesize_under(&rsn, opts, budget).expect("synthesis succeeds")
    });
    let synthesis_time = synth_t0.elapsed();
    let ft = {
        let _s = pipeline.child("metric_ft");
        sweep(&synthesis.rsn, HardeningProfile::hardened())
    };
    let metric_time = t0.elapsed() - synthesis_time;

    let model = AreaModel::default();
    let overhead = rsn_obs::timed("area", || {
        Overhead::between(&costs(&rsn, &model), &costs(&synthesis.rsn, &model))
    });

    let timed_out = sib.skipped > 0 || ft.skipped > 0;
    let degraded = synthesis.report.degraded;
    Row {
        name: name.to_string(),
        modules: soc.modules.len(),
        levels: soc.depth() + 1,
        mux: rsn.muxes().count(),
        segments: rsn.segments().count(),
        bits: rsn.total_bits(),
        sib,
        ft,
        overhead,
        synthesis_time,
        metric_time,
        paper,
        synthesis,
        timed_out,
        degraded,
    }
}

/// Cross-validates fault-free accessibility of the first `max_targets`
/// segments against the bounded model checker, recording
/// `bench.bmc_checked` / `bench.bmc_mismatches` counters. This is the
/// stage that exercises the SAT solver in a default `table1` run (the
/// structural engine alone never builds a CNF).
///
/// Returns `(checked, mismatches)`. Skipped (returns `(0, 0)`) when the
/// network exceeds `max_nodes` — the CSU unrolling grows quadratically —
/// or has secondary scan ports (not modeled by the BMC).
pub fn bmc_spot_check(rsn: &Rsn, steps: usize, max_nodes: usize, max_targets: usize) -> (u64, u64) {
    bmc_spot_check_under(rsn, steps, max_nodes, max_targets, &Budget::unlimited())
}

/// [`bmc_spot_check`] bounded by a [`Budget`]: an [`rsn_bmc::Verdict::Unknown`]
/// verdict stops the sweep (remaining targets are neither checked nor
/// counted), so a spot check on an already expired row budget costs one
/// solver entry check and nothing more.
pub fn bmc_spot_check_under(
    rsn: &Rsn,
    steps: usize,
    max_nodes: usize,
    max_targets: usize,
    budget: &Budget,
) -> (u64, u64) {
    if rsn.node_count() > max_nodes
        || rsn.secondary_scan_in().is_some()
        || rsn.secondary_scan_out().is_some()
    {
        return (0, 0);
    }
    let _span = rsn_obs::Span::enter("bmc_spot_check");
    let mut checker = rsn_bmc::BmcChecker::new(rsn, steps);
    let mut checked = 0u64;
    let mut mismatches = 0u64;
    for seg in rsn.segments().take(max_targets) {
        let bmc = match checker.accessible_under(seg, budget) {
            rsn_bmc::Verdict::Unknown { .. } => break,
            verdict => verdict.is_accessible(),
        };
        let structural = rsn.is_accessible(seg);
        checked += 1;
        if bmc != structural {
            mismatches += 1;
            rsn_obs::warn!(
                "bmc/structural disagreement on {}: bmc {bmc} structural {structural}",
                rsn.node(seg).name()
            );
        }
    }
    rsn_obs::counter_add("bench.bmc_checked", checked);
    rsn_obs::counter_add("bench.bmc_mismatches", mismatches);
    (checked, mismatches)
}

/// One timed accessibility sweep: the full weighted fault universe of a
/// network evaluated through a freshly built [`AccessEngine`].
///
/// The timed region covers engine construction *and* the per-fault sweep,
/// so `faults_per_sec` is comparable with an end-to-end
/// [`rsn_fault::analyze_parallel_with`] call (the quantity tracked in
/// `BENCH_access.json`).
#[derive(Debug, Clone)]
pub struct AccessSweep {
    /// Faults in the universe (each accounted exactly once).
    pub faults: usize,
    /// Equivalence classes actually evaluated (== `faults` with
    /// collapsing off).
    pub classes: usize,
    /// `faults / classes`, never below 1.0.
    pub collapse_ratio: f64,
    /// Wall-clock seconds for engine build + sweep.
    pub seconds: f64,
    /// `faults / seconds`.
    pub faults_per_sec: f64,
    /// Weighted-average segment accessibility — a correctness anchor so a
    /// throughput gain can't silently come from computing the wrong thing.
    pub avg_segments: f64,
}

/// Engine throughput of one benchmark: the original SIB-RSN and its
/// synthesized fault-tolerant counterpart, each swept once.
#[derive(Debug, Clone)]
pub struct AccessBench {
    /// Benchmark name.
    pub name: String,
    /// Sweep of the original SIB-RSN (unhardened profile).
    pub sib: AccessSweep,
    /// Sweep of the fault-tolerant RSN (hardened profile).
    pub ft: AccessSweep,
}

fn timed_sweep(rsn: &Rsn, profile: HardeningProfile, collapse: bool) -> AccessSweep {
    let faults = fault_universe_weighted(rsn, WeightModel::Ports);
    let threads = rsn_budget::default_threads().min(16);
    let t0 = Instant::now();
    let engine = AccessEngine::new(rsn);
    let report = if collapse {
        analyze_faults_on(&engine, &faults, profile, threads)
    } else {
        rsn_fault::analyze_faults_on_budget_uncollapsed(
            &engine,
            &faults,
            profile,
            threads,
            &Budget::unlimited(),
        )
    };
    let seconds = t0.elapsed().as_secs_f64();
    AccessSweep {
        faults: faults.len(),
        classes: report.classes,
        collapse_ratio: report.collapse_ratio,
        seconds,
        faults_per_sec: faults.len() as f64 / seconds.max(1e-9),
        avg_segments: report.avg_segments,
    }
}

/// Measures accessibility-engine throughput on one embedded benchmark:
/// generates the SIB-RSN, sweeps its fault universe, synthesizes the
/// fault-tolerant RSN and sweeps that too. Records
/// `bench.access_sib_faults_per_sec` / `bench.access_ft_faults_per_sec`
/// gauges (the per-sweep `fault.faults_per_sec` gauge is also set by the
/// inner [`analyze_faults_on`] calls).
///
/// # Panics
///
/// Panics if `name` is not one of the embedded benchmarks or synthesis
/// fails (the embedded suite is expected to succeed end to end).
pub fn bench_access(name: &str) -> AccessBench {
    bench_access_with(name, true)
}

/// [`bench_access`] with fault collapsing switched on or off — the
/// `--no-collapse` escape hatch measures the raw per-fault engine
/// throughput without class sharing.
pub fn bench_access_with(name: &str, collapse: bool) -> AccessBench {
    let _span = rsn_obs::Span::enter("bench_access");
    let soc = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let rsn = generate(&soc).expect("SIB generation succeeds on embedded suite");
    let sib = timed_sweep(&rsn, HardeningProfile::unhardened(), collapse);
    rsn_obs::gauge_set("bench.access_sib_faults_per_sec", sib.faults_per_sec);
    let ft_rsn = synthesize(&rsn, &SynthesisOptions::new())
        .expect("synthesis succeeds")
        .rsn;
    let ft = timed_sweep(&ft_rsn, HardeningProfile::hardened(), collapse);
    rsn_obs::gauge_set("bench.access_ft_faults_per_sec", ft.faults_per_sec);
    AccessBench {
        name: name.to_string(),
        sib,
        ft,
    }
}

/// The 13 benchmark names in Table I order.
pub const BENCHMARKS: [&str; 13] = [
    "u226", "d281", "d695", "h953", "g1023", "x1331", "f2126", "q12710", "t512505", "a586710",
    "p22081", "p34392", "p93791",
];

/// One serial-vs-portfolio measurement of a single SAT-backed workload
/// (one row of `BENCH_sat.json`).
///
/// The timed region is the solve alone — CNF construction is identical
/// on both sides and would only dilute the ratio. `agreement` is the
/// soundness anchor: a speedup that changes the verdict is a bug, not a
/// win.
#[derive(Debug, Clone)]
pub struct SatBenchRow {
    /// Benchmark name.
    pub name: String,
    /// Workload family: `verify`, `miter-equivalent` or `miter-distinct`.
    pub family: &'static str,
    /// Human-readable description of the concrete instance.
    pub instance: String,
    /// Worker count of the parallel side (the serial side is always 1).
    pub threads: usize,
    /// Wall-clock seconds of the serial solve.
    pub serial_seconds: f64,
    /// Conflicts spent by the serial solve.
    pub serial_conflicts: u64,
    /// Wall-clock seconds of the portfolio solve.
    pub parallel_seconds: f64,
    /// Conflicts spent by the portfolio solve (all workers).
    pub parallel_conflicts: u64,
    /// Both sides reached the same verdict.
    pub agreement: bool,
    /// `serial_seconds / parallel_seconds`.
    pub speedup: f64,
}

/// Runs `f` and returns its result plus wall-clock seconds and the
/// `sat.conflicts` delta it caused.
fn timed_sat<T>(f: impl FnOnce() -> T) -> (T, f64, u64) {
    let before = rsn_obs::counter_get("sat.conflicts");
    let t0 = Instant::now();
    let out = f();
    let seconds = t0.elapsed().as_secs_f64();
    (out, seconds, rsn_obs::counter_get("sat.conflicts") - before)
}

fn sat_row(
    name: &str,
    family: &'static str,
    instance: String,
    threads: usize,
    serial: (f64, u64),
    parallel: (f64, u64),
    agreement: bool,
) -> SatBenchRow {
    SatBenchRow {
        name: name.to_string(),
        family,
        instance,
        threads,
        serial_seconds: serial.0,
        serial_conflicts: serial.1,
        parallel_seconds: parallel.0,
        parallel_conflicts: parallel.1,
        agreement,
        speedup: serial.0 / parallel.0.max(1e-9),
    }
}

/// Conflicts a same-class pair may survive in the hardest-pair probe
/// before it is declared search-hard.
const MITER_PROBE_QUOTA: u64 = 2_000;

/// Same-class pairs examined by the hardest-pair probe.
const MITER_PROBE_PAIRS: usize = 6;

/// Picks the hardest test-equivalence query of the benchmark: the first
/// same-class fault pair (two faults the structural collapser proved
/// equivalent) whose work-limited serial miter solve fails to finish
/// within [`MITER_PROBE_QUOTA`] conflicts — or, if every probe
/// finishes, the one that spent the most conflicts. Same-class pairs
/// are the search-hard family: the solver must re-derive the structural
/// equivalence from the unrolled transition relation.
fn hardest_equivalent_pair(
    rsn: &Rsn,
    steps: usize,
    faults: &[rsn_fault::Fault],
    classes: &rsn_fault::FaultClasses,
    profile: HardeningProfile,
) -> Option<(rsn_fault::FaultEffect, rsn_fault::FaultEffect, String)> {
    let mut best: Option<(u64, usize, usize)> = None;
    for class in classes
        .classes()
        .iter()
        .filter(|c| c.members.len() >= 2)
        .take(MITER_PROBE_PAIRS)
    {
        let (i, j) = (class.members[0] as usize, class.members[1] as usize);
        let a = rsn_fault::effect_of(rsn, &faults[i], profile);
        let b = rsn_fault::effect_of(rsn, &faults[j], profile);
        let mut miter = rsn_bmc::FaultDistinguisher::new(rsn, steps, &a, &b);
        let probe = Budget::unlimited().with_work_limit(MITER_PROBE_QUOTA);
        let (verdict, _, conflicts) = timed_sat(|| miter.distinguishable_under(&probe));
        let survived = matches!(verdict, rsn_bmc::Distinguishability::Unknown { .. });
        if survived {
            return Some((a, b, format!("fault pair ({i}, {j}), {steps} steps")));
        }
        if best.is_none_or(|(c, _, _)| conflicts > c) {
            best = Some((conflicts, i, j));
        }
    }
    let (_, i, j) = best?;
    Some((
        rsn_fault::effect_of(rsn, &faults[i], profile),
        rsn_fault::effect_of(rsn, &faults[j], profile),
        format!("fault pair ({i}, {j}), {steps} steps"),
    ))
}

/// Measures the SAT engine serial vs portfolio on one embedded
/// benchmark: the full verify run (the phase-0 no-regression guard) and
/// the two fault-distinguishability miter families — the hardest
/// same-class pair (UNSAT, search-hard) and the first cross-class pair
/// (SAT). Sets the `sat.parallel_speedup` gauge to the hard row's
/// ratio.
///
/// # Panics
///
/// Panics if `name` is not one of the embedded benchmarks.
pub fn bench_sat(name: &str, threads: usize) -> Vec<SatBenchRow> {
    let _span = rsn_obs::Span::enter("bench_sat");
    let soc = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let rsn = generate(&soc).expect("SIB generation succeeds on embedded suite");
    let steps = soc.depth() + 1;
    let mut rows = Vec::new();

    // Family 1: the full static + SAT verify run. Its queries decide in
    // the portfolio's serial phase 0, so this row documents that easy
    // workloads pay (approximately) nothing for the parallel plumbing.
    let verify_at = |n: usize| {
        let opts = rsn_verify::VerifyOptions {
            solver_threads: n,
            ..rsn_verify::VerifyOptions::default()
        };
        timed_sat(|| rsn_verify::verify_with(&rsn, opts))
    };
    let (serial_report, ss, sc) = verify_at(1);
    let (parallel_report, ps, pc) = verify_at(threads);
    rows.push(sat_row(
        name,
        "verify",
        format!(
            "{} check families, {} SAT queries",
            serial_report.checks_run.len(),
            serial_report.sat_queries
        ),
        threads,
        (ss, sc),
        (ps, pc),
        serial_report.error_count() == parallel_report.error_count()
            && serial_report.warning_count() == parallel_report.warning_count()
            && serial_report.is_complete() == parallel_report.is_complete(),
    ));

    // Families 2 and 3: fault-distinguishability miters. Each timed
    // solve gets a freshly built miter so learnt clauses cannot leak
    // from the serial side into the portfolio side (or vice versa).
    let profile = HardeningProfile::unhardened();
    let faults = rsn_fault::fault_universe(&rsn);
    let classes = rsn_fault::FaultClasses::build(&rsn, &faults, profile);
    let miter_row = |family: &'static str,
                     a: &rsn_fault::FaultEffect,
                     b: &rsn_fault::FaultEffect,
                     instance: String| {
        let solve = |n: usize| {
            let mut miter = rsn_bmc::FaultDistinguisher::new(&rsn, steps, a, b);
            miter.set_threads(n);
            timed_sat(move || miter.distinguishable_under(&Budget::unlimited()))
        };
        let (serial_verdict, ss, sc) = solve(1);
        let (parallel_verdict, ps, pc) = solve(threads);
        sat_row(
            name,
            family,
            instance,
            threads,
            (ss, sc),
            (ps, pc),
            serial_verdict == parallel_verdict,
        )
    };
    if let Some((a, b, instance)) = hardest_equivalent_pair(&rsn, steps, &faults, &classes, profile)
    {
        let row = miter_row("miter-equivalent", &a, &b, instance);
        rsn_obs::gauge_set("sat.parallel_speedup", row.speedup);
        rows.push(row);
    }
    let mut reps = classes.classes().iter().map(|c| c.members[0] as usize);
    if let (Some(i), Some(j)) = (reps.next(), reps.next()) {
        let a = rsn_fault::effect_of(&rsn, &faults[i], profile);
        let b = rsn_fault::effect_of(&rsn, &faults[j], profile);
        rows.push(miter_row(
            "miter-distinct",
            &a,
            &b,
            format!("fault pair ({i}, {j}), {steps} steps"),
        ));
    }
    rows
}

/// Formats a row in the layout of the paper's Table I (measured values).
pub fn format_row(row: &Row) -> String {
    format!(
        "{:<8} {:>3} {:>2} {:>4} {:>5} {:>6} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} | {:>5.2} {:>6.3} {:>6.3} {:>6.3} | {:>5.2} {:>5.2} {:>5.2} {:>5.2}",
        row.name,
        row.modules,
        row.levels,
        row.mux,
        row.segments,
        row.bits,
        row.sib.worst_bits,
        row.sib.avg_bits,
        row.sib.worst_segments,
        row.sib.avg_segments,
        row.ft.worst_bits,
        row.ft.avg_bits,
        row.ft.worst_segments,
        row.ft.avg_segments,
        row.overhead.mux_ratio,
        row.overhead.bits_ratio,
        row.overhead.nets_ratio,
        row.overhead.area_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_small_benchmark_end_to_end() {
        let row = evaluate("q12710");
        assert_eq!(row.mux, 25);
        assert_eq!(row.segments, 46);
        // Paper shape: SIB worst is total disconnection, FT much better.
        assert_eq!(row.sib.worst_segments, 0.0);
        assert!(row.ft.worst_segments > 0.9, "{}", row.ft.worst_segments);
        assert!(row.ft.avg_segments > row.sib.avg_segments);
        assert!(row.overhead.mux_ratio > 1.5);
    }

    #[test]
    fn format_row_contains_name() {
        let row = evaluate("q12710");
        let s = format_row(&row);
        assert!(s.starts_with("q12710"));
    }

    #[test]
    fn exhausted_row_budget_times_out_but_still_produces_a_row() {
        // A zero work budget starves both metric sweeps deterministically;
        // the row must still come back whole, marked rather than aborted.
        let budget = Budget::unlimited().with_work_limit(0);
        let row = evaluate_budgeted(
            "q12710",
            &SynthesisOptions::new(),
            WeightModel::Ports,
            &budget,
        );
        assert!(row.timed_out);
        assert!(row.sib.skipped > 0 && row.ft.skipped > 0);
        assert_eq!(row.segments, 46, "characteristics survive starvation");
        assert!(row.overhead.mux_ratio > 1.0, "synthesis still ran");
    }

    #[test]
    fn unlimited_budget_row_matches_unbudgeted() {
        let plain = evaluate("q12710");
        let budgeted = evaluate_budgeted(
            "q12710",
            &SynthesisOptions::new(),
            WeightModel::Ports,
            &Budget::unlimited(),
        );
        assert!(!budgeted.timed_out && !budgeted.degraded);
        assert_eq!(plain.sib, budgeted.sib);
        assert_eq!(plain.ft, budgeted.ft);
        assert_eq!(plain.synthesis.report, budgeted.synthesis.report);
    }
}
