//! Criterion bench: fault-tolerant synthesis wall-clock per benchmark
//! (the paper's Sec. IV-B runtime claim: the ILP finished in under 8
//! minutes for the largest instance; our greedy solver is near-linear).

use criterion::{criterion_group, criterion_main, Criterion};

use rsn_itc02::by_name;
use rsn_sib::generate;
use rsn_synth::{synthesize, SolverChoice, SynthesisOptions};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for name in ["u226", "d695", "t512505", "p93791"] {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        group.bench_function(name, |b| {
            b.iter(|| synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize"))
        });
    }
    group.finish();
}

fn bench_ilp_synthesis(c: &mut Criterion) {
    // Exact ILP on the Fig. 2-sized example and a mid-size SoC graph.
    let mut group = c.benchmark_group("synthesis_ilp");
    group.sample_size(10);
    let rsn = rsn_core::examples::fig2();
    group.bench_function("fig2", |b| {
        let mut opts = SynthesisOptions::new();
        opts.solver = SolverChoice::Ilp;
        b.iter(|| synthesize(&rsn, &opts).expect("synthesize"))
    });
    let soc = by_name("q12710").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    group.bench_function("q12710", |b| {
        let mut opts = SynthesisOptions::new();
        opts.solver = SolverChoice::Ilp;
        opts.augment.max_candidates = 4;
        b.iter(|| synthesize(&rsn, &opts).expect("synthesize"))
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_ilp_synthesis);
criterion_main!(benches);
