//! Criterion bench for ablation A1: exact ILP vs greedy augmentation on
//! graph instances small enough for the exact solver.

use criterion::{criterion_group, criterion_main, Criterion};

use rsn_core::examples::{fig2, sib_tree};
use rsn_synth::{augment_greedy, augment_ilp, AugmentOptions, Dataflow};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ilp_vs_greedy");
    group.sample_size(10);
    let networks = vec![("fig2", fig2()), ("sib_tree_1_3", sib_tree(1, 3, 4))];
    for (name, rsn) in networks {
        let df = Dataflow::extract(&rsn);
        let opts = AugmentOptions::default();
        group.bench_function(format!("{name}_greedy"), |b| {
            b.iter(|| augment_greedy(&df, &opts))
        });
        group.bench_function(format!("{name}_ilp"), |b| {
            b.iter(|| augment_ilp(&df, &opts).expect("solvable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
