//! Criterion bench: the substrate solvers (SAT, LP/ILP) on synthetic
//! instances — the engines behind BMC and the augmentation.

use criterion::{criterion_group, criterion_main, Criterion};

use rsn_ilp::{solve_ilp, solve_lp, Problem};
use rsn_sat::{Lit, Solver, Var};

/// Deterministic xorshift for reproducible instances.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn random_3sat(vars: usize, clauses: usize, seed: u64) -> (usize, Vec<[Lit; 3]>) {
    let mut rng = Rng(seed | 1);
    let cls = (0..clauses)
        .map(|_| {
            [0, 1, 2].map(|_| {
                let v = Var((rng.next() % vars as u64) as u32);
                if rng.next().is_multiple_of(2) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
        })
        .collect();
    (vars, cls)
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    // Under the phase-transition ratio: mostly satisfiable.
    let (nv, clauses) = random_3sat(150, 550, 0x1234);
    group.bench_function("3sat_150v_550c", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            for _ in 0..nv {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            s.solve()
        })
    });
    group.finish();
}

fn assignment_lp(n: usize) -> Problem {
    // Balanced assignment polytope: integral vertices, nontrivial pivots.
    let mut p = Problem::new();
    let mut rng = Rng(0xfeed_f00d);
    let vars: Vec<Vec<_>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| p.add_var(format!("x{i}_{j}"), (rng.next() % 100) as f64, Some(1.0)))
                .collect()
        })
        .collect();
    for (i, row) in vars.iter().enumerate() {
        p.add_eq(row.iter().map(|&v| (v, 1.0)), 1.0);
        p.add_eq((0..n).map(|j| (vars[j][i], 1.0)), 1.0);
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp");
    group.sample_size(20);
    for n in [6, 10] {
        let p = assignment_lp(n);
        group.bench_function(format!("assignment_{n}x{n}"), |b| b.iter(|| solve_lp(&p)));
    }
    group.finish();
}

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp");
    group.sample_size(10);
    // Small knapsack family.
    let mut p = Problem::new();
    let mut rng = Rng(0xabcd);
    let vars: Vec<_> = (0..14)
        .map(|i| p.add_binary_var(format!("x{i}"), -((rng.next() % 50) as f64)))
        .collect();
    p.add_le(
        vars.iter().map(|&v| (v, (1 + rng.next() % 20) as f64)),
        60.0,
    );
    group.bench_function("knapsack_14", |b| b.iter(|| solve_ilp(&p).expect("solvable")));
    group.finish();
}

criterion_group!(benches, bench_sat, bench_lp, bench_ilp);
criterion_main!(benches);
