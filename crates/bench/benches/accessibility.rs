//! Criterion bench: fault-tolerance metric evaluation (the dominant cost
//! of regenerating Table I — one accessibility analysis per stuck-at
//! fault).

use criterion::{criterion_group, criterion_main, Criterion};

use rsn_fault::{accessibility, analyze, effect_of, fault_universe, HardeningProfile};
use rsn_itc02::by_name;
use rsn_sib::generate;

fn bench_single_fault(c: &mut Criterion) {
    // One engine run (fixed point + reachability) per iteration.
    let soc = by_name("d695").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let faults = fault_universe(&rsn);
    let effect = effect_of(&rsn, &faults[7], HardeningProfile::unhardened());
    c.bench_function("single_fault_d695", |b| {
        b.iter(|| accessibility(&rsn, &effect))
    });
}

fn bench_full_metric(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric");
    group.sample_size(10);
    for name in ["u226", "q12710", "x1331"] {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        group.bench_function(name, |b| {
            b.iter(|| analyze(&rsn, HardeningProfile::unhardened()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_fault, bench_full_metric);
criterion_main!(benches);
