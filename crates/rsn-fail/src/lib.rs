//! `rsn-fail` — deterministic failpoint injection for chaos testing.
//!
//! The paper's subject is tolerating faults in the network under
//! analysis; this crate applies the same discipline to the analysis
//! stack itself. A *failpoint* is a named place in the code
//! (`rsn_fail::fail_point!("sat.solve")`) where a failure can be
//! injected deliberately: a panic, a delay, an error return, or budget
//! exhaustion. Production code pays one relaxed atomic load when no
//! failpoint is configured; chaos runs configure points via the
//! `RSN_FAIL` environment variable or the programmatic API and replay
//! bit-identically thanks to per-point splitmix64 streams.
//!
//! # Spec grammar
//!
//! ```text
//! RSN_FAIL   := entry (';' entry)*
//! entry      := point '=' action ['@' prob [',' seed]]
//! action     := 'panic' | 'delay(' MS ')' | 'err' | 'budget' | 'off'
//! prob       := float in [0, 1]          (default 1.0: always fire)
//! seed       := u64                      (default: hash of the point name)
//! ```
//!
//! Examples:
//!
//! ```text
//! RSN_FAIL="sat.solve=panic"                        # every solve panics
//! RSN_FAIL="sat.solve=panic@0.3,42;fault.sweep=delay(50)@0.5,7"
//! RSN_FAIL="verify.run=budget@0.2"                  # 20% budget exhaustion
//! ```
//!
//! # Actions at a point
//!
//! * [`Action::Panic`] and [`Action::Delay`] are applied *inside*
//!   [`eval`]: the panic unwinds from the failpoint, the delay sleeps
//!   then continues.
//! * [`Action::Err`] and [`Action::BudgetExhaust`] are returned to the
//!   call site as [`Injected`], because only the caller knows its error
//!   channel (an engine typically cancels its `Budget` or returns its
//!   own error type; the service returns a 500).
//!
//! Every firing counts `fail.injected{point=<name>}` in the `rsn-obs`
//! registry, so chaos runs can prove (and quantify) their injections.
//!
//! # Determinism
//!
//! Each configured point owns a splitmix64 stream seeded by the spec (or
//! the point-name hash). The *n*-th evaluation of a point fires iff the
//! *n*-th draw of its stream is below the probability threshold —
//! independent of thread interleaving at other points, so a chaos run is
//! replayed by re-running with the same spec.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What a configured failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic at the failpoint (unwinds; pairs with `catch_unwind`
    /// supervision upstream).
    Panic,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
    /// Ask the call site to take its error path.
    Err,
    /// Ask the call site to behave as if its budget were exhausted.
    BudgetExhaust,
    /// Registered but inert (useful to disable one entry of a longer
    /// spec without rewriting it).
    Off,
}

/// An injection the call site must apply itself (see [`Action`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Take the error path.
    Error,
    /// Behave as if the budget were exhausted.
    BudgetExhaust,
}

/// One configured point: the action, a fire threshold on the u64 draw,
/// and the splitmix64 state the draws come from.
struct Point {
    action: Action,
    /// Fire iff `next_u64 <= threshold`; `u64::MAX` = always.
    threshold: u64,
    rng: AtomicU64,
    fired: AtomicU64,
    evals: AtomicU64,
}

/// The global failpoint table. `ACTIVE` is the production fast path:
/// false means [`eval`] returns `None` after a single relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INIT: std::sync::Once = std::sync::Once::new();

fn registry() -> &'static Mutex<HashMap<String, Point>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<String, Point>> {
    // A panicking failpoint can unwind through a caller that holds this
    // lock only if that caller is rsn-fail itself — it never is (eval
    // drops the guard before applying actions) — but recover anyway:
    // chaos tooling must not wedge on its own poison.
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// splitmix64: the workspace's standard deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over the point name: the default seed, so unseeded specs are
/// still deterministic per point.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn threshold_for(prob: f64) -> u64 {
    if prob >= 1.0 {
        u64::MAX
    } else if prob <= 0.0 {
        0
    } else {
        (prob * u64::MAX as f64) as u64
    }
}

/// Configures one failpoint programmatically. `prob` is clamped to
/// [0, 1]; `seed` defaults to a hash of the name. Replaces any existing
/// configuration of the same point.
pub fn configure(name: &str, action: Action, prob: f64, seed: Option<u64>) {
    let point = Point {
        action,
        threshold: threshold_for(prob),
        rng: AtomicU64::new(seed.unwrap_or_else(|| name_seed(name))),
        fired: AtomicU64::new(0),
        evals: AtomicU64::new(0),
    };
    let mut reg = lock_registry();
    reg.insert(name.to_string(), point);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes one failpoint. The fast path stays active while any other
/// point remains configured.
pub fn remove(name: &str) {
    let mut reg = lock_registry();
    reg.remove(name);
    if reg.is_empty() {
        ACTIVE.store(false, Ordering::SeqCst);
    }
}

/// Removes every failpoint and restores the unconfigured fast path.
pub fn clear() {
    let mut reg = lock_registry();
    reg.clear();
    ACTIVE.store(false, Ordering::SeqCst);
}

/// `(evaluations, firings)` of a point since it was configured —
/// chaos-test bookkeeping.
pub fn stats(name: &str) -> Option<(u64, u64)> {
    let reg = lock_registry();
    reg.get(name).map(|p| {
        (
            p.evals.load(Ordering::Relaxed),
            p.fired.load(Ordering::Relaxed),
        )
    })
}

/// Parses and applies an `RSN_FAIL`-style spec (see the module docs for
/// the grammar). Entries are applied left to right; on a malformed
/// entry, everything before it stays applied and an error describing
/// the bad entry is returned.
pub fn configure_spec(spec: &str) -> Result<(), String> {
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry without '=': {entry:?}"))?;
        let (action_text, prob_seed) = match rest.split_once('@') {
            Some((a, ps)) => (a.trim(), Some(ps.trim())),
            None => (rest.trim(), None),
        };
        let action = parse_action(action_text)?;
        let (prob, seed) = match prob_seed {
            None => (1.0, None),
            Some(ps) => match ps.split_once(',') {
                None => (parse_prob(ps)?, None),
                Some((p, s)) => {
                    let seed = s
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("bad failpoint seed: {s:?}"))?;
                    (parse_prob(p)?, Some(seed))
                }
            },
        };
        configure(name.trim(), action, prob, seed);
    }
    Ok(())
}

fn parse_prob(text: &str) -> Result<f64, String> {
    let p = text
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("bad failpoint probability: {text:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("failpoint probability out of [0,1]: {text:?}"));
    }
    Ok(p)
}

fn parse_action(text: &str) -> Result<Action, String> {
    match text {
        "panic" => Ok(Action::Panic),
        "err" => Ok(Action::Err),
        "budget" => Ok(Action::BudgetExhaust),
        "off" => Ok(Action::Off),
        other => {
            if let Some(ms) = other
                .strip_prefix("delay(")
                .and_then(|r| r.strip_suffix(')'))
            {
                ms.trim()
                    .parse::<u64>()
                    .map(Action::Delay)
                    .map_err(|_| format!("bad delay milliseconds: {ms:?}"))
            } else {
                Err(format!(
                    "unknown failpoint action {other:?} (panic, delay(MS), err, budget, off)"
                ))
            }
        }
    }
}

/// Applies the `RSN_FAIL` environment spec, once per process. Called
/// lazily by [`eval`]; safe to call eagerly (e.g. from a daemon's main)
/// to surface spec errors at startup.
pub fn init_from_env() -> Result<(), String> {
    let mut result = Ok(());
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("RSN_FAIL") {
            result = configure_spec(&spec);
            if let Err(e) = &result {
                // A daemon booted with a broken chaos spec should say so
                // once, loudly, rather than silently running clean.
                rsn_obs::log_message(rsn_obs::Level::Warn, "rsn-fail", format_args!("{e}"));
            }
        }
    });
    result
}

/// Evaluates the failpoint `name`. The production fast path — nothing
/// configured anywhere — is one relaxed atomic load. When the point is
/// configured and its probability draw fires: `Panic` panics from here,
/// `Delay` sleeps then returns `None`, and `Err` / `BudgetExhaust` are
/// returned as [`Injected`] for the call site to apply.
pub fn eval(name: &str) -> Option<Injected> {
    if !ENV_INIT.is_completed() {
        let _ = init_from_env();
    }
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let action = {
        let reg = lock_registry();
        let point = reg.get(name)?;
        point.evals.fetch_add(1, Ordering::Relaxed);
        if matches!(point.action, Action::Off) {
            return None;
        }
        // Advance this point's splitmix64 stream by one draw, atomically:
        // concurrent evaluators each consume a distinct position, and the
        // aggregate multiset of draws is identical across replays.
        let drawn = {
            let mut cur = point.rng.load(Ordering::Relaxed);
            loop {
                let mut next = cur;
                let value = splitmix64(&mut next);
                match point.rng.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break value,
                    Err(actual) => cur = actual,
                }
            }
        };
        if point.threshold != u64::MAX && drawn > point.threshold {
            return None;
        }
        point.fired.fetch_add(1, Ordering::Relaxed);
        point.action
    };
    rsn_obs::counter_add(&format!("fail.injected{{point={name}}}"), 1);
    match action {
        Action::Panic => panic!("rsn-fail: injected panic at failpoint {name:?}"),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Err => Some(Injected::Error),
        Action::BudgetExhaust => Some(Injected::BudgetExhaust),
        Action::Off => None,
    }
}

/// Evaluates a failpoint. The one-argument form returns
/// `Option<Injected>` for the caller to match; the two-argument form
/// maps an injection through the given closure and `return`s its value
/// from the enclosing function.
///
/// ```
/// fn solve() -> Result<u32, String> {
///     rsn_fail::fail_point!("demo.solve", |inj| Err(format!("injected: {inj:?}")));
///     Ok(42)
/// }
/// assert_eq!(solve(), Ok(42)); // unconfigured: no-op
/// ```
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::eval($name)
    };
    ($name:expr, $on:expr) => {
        #[allow(clippy::redundant_closure_call)]
        if let Some(inj) = $crate::eval($name) {
            return ($on)(inj);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global registry: tests touching it must not interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unconfigured_is_none() {
        let _guard = serial();
        clear();
        assert_eq!(eval("no.such.point"), None);
        assert!(!ACTIVE.load(Ordering::SeqCst));
    }

    #[test]
    fn err_and_budget_are_returned() {
        let _guard = serial();
        clear();
        configure("t.err", Action::Err, 1.0, Some(1));
        configure("t.budget", Action::BudgetExhaust, 1.0, Some(1));
        assert_eq!(eval("t.err"), Some(Injected::Error));
        assert_eq!(eval("t.budget"), Some(Injected::BudgetExhaust));
        assert_eq!(eval("t.other"), None);
        clear();
    }

    #[test]
    fn panic_fires_inline() {
        let _guard = serial();
        clear();
        configure("t.panic", Action::Panic, 1.0, Some(2));
        let caught = std::panic::catch_unwind(|| eval("t.panic"));
        assert!(caught.is_err());
        assert_eq!(stats("t.panic"), Some((1, 1)));
        clear();
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let _guard = serial();
        clear();
        let run = |seed| {
            configure("t.prob", Action::Err, 0.5, Some(seed));
            let fired: Vec<bool> = (0..64).map(|_| eval("t.prob").is_some()).collect();
            remove("t.prob");
            fired
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should diverge");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fired), "p=0.5 over 64 draws: {fired}");
        clear();
    }

    #[test]
    fn zero_probability_never_fires() {
        let _guard = serial();
        clear();
        configure("t.never", Action::Panic, 0.0, Some(3));
        for _ in 0..256 {
            assert_eq!(eval("t.never"), None);
        }
        assert_eq!(stats("t.never"), Some((256, 0)));
        clear();
    }

    #[test]
    fn spec_grammar_round_trips() {
        let _guard = serial();
        clear();
        configure_spec("a.b=panic; c.d = delay(25) @ 0.5 , 99 ;e.f=budget@0.25;;g.h=off")
            .expect("valid spec");
        {
            let reg = lock_registry();
            assert_eq!(reg.get("a.b").unwrap().action, Action::Panic);
            assert_eq!(reg.get("c.d").unwrap().action, Action::Delay(25));
            assert_eq!(reg.get("e.f").unwrap().action, Action::BudgetExhaust);
            assert_eq!(reg.get("g.h").unwrap().action, Action::Off);
            assert_eq!(reg.get("c.d").unwrap().rng.load(Ordering::Relaxed), 99);
        }
        assert_eq!(eval("g.h"), None, "off entries are inert");
        clear();
    }

    #[test]
    fn spec_errors_are_typed_messages() {
        let _guard = serial();
        clear();
        assert!(configure_spec("nameonly").is_err());
        assert!(configure_spec("a=explode").is_err());
        assert!(configure_spec("a=delay(abc)").is_err());
        assert!(configure_spec("a=panic@1.5").is_err());
        assert!(configure_spec("a=panic@0.5,notanumber").is_err());
        clear();
    }

    #[test]
    fn delay_sleeps_then_continues() {
        let _guard = serial();
        clear();
        configure("t.delay", Action::Delay(30), 1.0, Some(4));
        let start = std::time::Instant::now();
        assert_eq!(eval("t.delay"), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
        clear();
    }

    #[test]
    fn macro_returns_through_closure() {
        let _guard = serial();
        clear();
        fn site() -> Result<u32, &'static str> {
            fail_point!("t.macro", |_| Err("injected"));
            Ok(7)
        }
        assert_eq!(site(), Ok(7));
        configure("t.macro", Action::Err, 1.0, Some(5));
        assert_eq!(site(), Err("injected"));
        clear();
    }
}
