//! Umbrella crate for the fault-tolerant RSN synthesis toolchain
//! (reproduction of Brandhofer, Kochte, Wunderlich, DATE 2020).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency:
//!
//! * [`core`] — RSN structural model, CSU semantics, access planning.
//! * [`graph`] — directed-graph algorithms (levels, max-flow, Menger).
//! * [`sat`] — CDCL SAT solver and CNF construction.
//! * [`bmc`] — bounded model checking of RSN accessibility.
//! * [`budget`] — deadlines, work budgets, cooperative cancellation.
//! * [`fault`] — stuck-at fault model and the fault-tolerance metric.
//! * [`ilp`] — simplex / branch-and-bound 0-1 ILP solver.
//! * [`obs`] — spans, counters/gauges, log facade, run reports.
//! * [`synth`] — the paper's synthesis: graph augmentation + hardening.
//! * [`itc02`] — ITC'02 SoC benchmark parsing and the embedded suite.
//! * [`sib`] — SIB-based RSN generation.
//!
//! # Quickstart
//!
//! ```
//! use ftrsn::core::examples::fig2;
//! use ftrsn::synth::{synthesize, SynthesisOptions};
//!
//! let rsn = fig2();
//! let result = synthesize(&rsn, &SynthesisOptions::default())?;
//! assert!(result.rsn.segments().count() >= rsn.segments().count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use rsn_bmc as bmc;
pub use rsn_budget as budget;
pub use rsn_core as core;
pub use rsn_export as export;
pub use rsn_fault as fault;
pub use rsn_graph as graph;
pub use rsn_ilp as ilp;
pub use rsn_itc02 as itc02;
pub use rsn_obs as obs;
pub use rsn_sat as sat;
pub use rsn_sib as sib;
pub use rsn_synth as synth;
pub use rsn_verify as verify;
