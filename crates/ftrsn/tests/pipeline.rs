//! End-to-end integration tests: SoC description → SIB-RSN →
//! fault-tolerant synthesis → metric and area, with golden expectations
//! derived from the paper's Table I shape.

use ftrsn::fault::{analyze_parallel, HardeningProfile};
use ftrsn::itc02::{by_name, table_targets, TABLE1};
use ftrsn::sib::generate;
use ftrsn::synth::area::{costs, AreaModel, Overhead};
use ftrsn::synth::{synthesize, SynthesisOptions};

/// The small half of the suite, kept fast enough for CI.
const SMALL: [&str; 6] = ["u226", "d281", "h953", "x1331", "f2126", "q12710"];

#[test]
fn characteristics_match_table1_for_whole_suite() {
    for t in TABLE1 {
        let soc = by_name(t.name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        assert_eq!(rsn.muxes().count(), t.mux, "{}", t.name);
        assert_eq!(rsn.segments().count(), t.segments, "{}", t.name);
        assert_eq!(rsn.total_bits(), t.bits, "{}", t.name);
    }
}

#[test]
fn sib_rsn_worst_case_is_total_disconnection() {
    // Table I: the worst-case accessibility of every SIB-RSN is 0.00.
    for name in SMALL {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let report = analyze_parallel(&rsn, HardeningProfile::unhardened());
        assert_eq!(report.worst_segments, 0.0, "{name}");
        assert_eq!(report.worst_bits, 0.0, "{name}");
        // Average in a plausible band around the paper's 0.66–0.93.
        assert!(
            report.avg_segments > 0.6 && report.avg_segments < 0.99,
            "{name}: avg {}",
            report.avg_segments
        );
    }
}

#[test]
fn ft_rsn_recovers_worst_case_and_average() {
    for name in SMALL {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let report = analyze_parallel(&result.rsn, HardeningProfile::hardened());
        // Paper: 95% – 99.9% of segments stay accessible for the worst
        // fault; over 99% on average.
        assert!(
            report.worst_segments > 0.9,
            "{name}: worst {}",
            report.worst_segments
        );
        assert!(
            report.avg_segments > 0.99,
            "{name}: avg {}",
            report.avg_segments
        );
        assert_eq!(result.report.repairs, 0, "{name}: Menger repairs");
    }
}

#[test]
fn overhead_ratios_have_paper_shape() {
    let model = AreaModel::default();
    let mut area_by_bits: Vec<(u64, f64)> = Vec::new();
    for name in SMALL {
        let t = table_targets(name).expect("row");
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let o = Overhead::between(&costs(&rsn, &model), &costs(&result.rsn, &model));
        // Mux ratio in the paper's order of magnitude (they report ≈3.5).
        assert!(
            o.mux_ratio > 2.0 && o.mux_ratio < 4.5,
            "{name}: mux {}",
            o.mux_ratio
        );
        // Bit and area overhead bounded and ≥ 1.
        assert!(
            o.bits_ratio >= 1.0 && o.bits_ratio < 1.6,
            "{name}: bits {}",
            o.bits_ratio
        );
        assert!(
            o.area_ratio >= 1.0 && o.area_ratio < 1.7,
            "{name}: area {}",
            o.area_ratio
        );
        area_by_bits.push((t.bits, o.area_ratio));
    }
    // Paper shape: area overhead shrinks as scan bits dominate.
    area_by_bits.sort_by_key(|&(bits, _)| bits);
    let smallest = area_by_bits.first().expect("nonempty").1;
    let largest = area_by_bits.last().expect("nonempty").1;
    assert!(
        smallest > largest,
        "area ratio must decrease with bits: {area_by_bits:?}"
    );
}

#[test]
fn synthesis_preserves_reset_path() {
    // The fault-tolerant network keeps the original reset scan path: the
    // routing bits reset to the original-edge selection.
    for name in ["u226", "q12710"] {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let orig_path = rsn.trace_path(&rsn.reset_config()).expect("orig");
        let ft_path = result
            .rsn
            .trace_path(&result.rsn.reset_config())
            .expect("ft");
        let orig_names: Vec<String> = orig_path
            .segments(&rsn)
            .map(|s| rsn.node(s).name().to_string())
            .collect();
        let ft_names: Vec<String> = ft_path
            .segments(&result.rsn)
            .map(|s| result.rsn.node(s).name().to_string())
            .collect();
        assert_eq!(orig_names, ft_names, "{name}");
    }
}

#[test]
fn every_segment_remains_fault_free_accessible_after_synthesis() {
    // Fault-free accessibility must not regress: every segment of the FT
    // network is reachable by the structural engine with no fault.
    let soc = by_name("q12710").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
    let acc = ftrsn::fault::accessibility(&result.rsn, &ftrsn::fault::FaultEffect::benign());
    assert_eq!(acc.accessible_segments, acc.total_segments);
}

#[test]
fn every_segment_plannable_in_original_and_ft() {
    // Basis of the T1-latency experiment: the greedy planner reaches every
    // segment from reset in both networks.
    for name in ["u226", "x1331"] {
        let soc = by_name(name).expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        for network in [&rsn, &result.rsn] {
            let report = network.latency_report();
            let unplannable = report
                .per_segment
                .iter()
                .filter(|(_, c)| c.is_none())
                .count();
            assert_eq!(unplannable, 0, "{name}/{}", network.name());
        }
    }
}

#[test]
fn parallel_and_sequential_metric_agree() {
    let soc = by_name("x1331").expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let a = ftrsn::fault::analyze(&rsn, HardeningProfile::unhardened());
    let b = analyze_parallel(&rsn, HardeningProfile::unhardened());
    assert_eq!(a.fault_count, b.fault_count);
    assert!((a.avg_segments - b.avg_segments).abs() < 1e-12);
    assert_eq!(a.worst_segments, b.worst_segments);
    assert_eq!(a.total_weight, b.total_weight);
}
