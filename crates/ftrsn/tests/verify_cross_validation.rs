//! Cross-validation of the exhaustive SAT-backed verifier (`rsn-verify`)
//! against the three other oracles in the workspace:
//!
//! 1. the legacy sampled `Rsn::lint` — the verifier's findings must be a
//!    superset on every example network and embedded benchmark tried;
//! 2. the cycle-accurate simulator — every SAT-derived witness
//!    configuration must reproduce its finding through `trace_path`;
//! 3. `rsn_bmc::verify_select_consistency` — the two independent SAT
//!    encodings must agree on select/path consistency (restricted to
//!    networks with a single scan-out port, the BMC encoding's domain);
//!
//! plus the end-to-end acceptance gate: the Table-1 synthesis flow with
//! verification enabled reports zero error-severity diagnostics.

use ftrsn::bmc::verify_select_consistency;
use ftrsn::core::examples::{chain, fig2, sib_tree};
use ftrsn::core::{ControlExpr, LintWarning, NodeKind, Rsn, RsnBuilder};
use ftrsn::itc02::by_name;
use ftrsn::sib::generate;
use ftrsn::synth::{synthesize, SynthesisOptions};
use ftrsn::verify::{verify, Code, Severity};

fn example_networks() -> Vec<Rsn> {
    vec![fig2(), chain(4, 8), sib_tree(2, 2, 4)]
}

fn embedded_networks() -> Vec<Rsn> {
    ["u226", "d281", "d695"]
        .iter()
        .map(|n| generate(&by_name(n).expect("embedded SoC")).expect("generate"))
        .collect()
}

/// Same (code, node) finding; the solver's witness need not equal the
/// sampled one.
fn same_finding(a: &LintWarning, b: &LintWarning) -> bool {
    match (a, b) {
        (
            LintWarning::SelectPathMismatch { segment: x, .. },
            LintWarning::SelectPathMismatch { segment: y, .. },
        ) => x == y,
        _ => a == b,
    }
}

#[test]
fn verifier_findings_superset_of_sampled_lint_everywhere() {
    for rsn in example_networks().into_iter().chain(embedded_networks()) {
        let sampled = rsn.lint(64);
        let proven = verify(&rsn).to_lint_warnings();
        for w in &sampled {
            assert!(
                proven.iter().any(|p| same_finding(p, w)),
                "network {}: sampled lint found {w} but the verifier did not",
                rsn.name()
            );
        }
    }
}

/// A single-segment network whose select predicate depends on a primary
/// input while the segment is unconditionally on the scan path: every
/// configuration with the input low is a select/path mismatch.
fn mismatched_network() -> (Rsn, ftrsn::core::NodeId) {
    let mut b = RsnBuilder::new("mismatch");
    let i = b.add_inputs(1);
    let s = b.add_segment("s", 4);
    b.set_select(s, ControlExpr::input(i));
    b.connect(b.scan_in(), s);
    b.connect(s, b.scan_out());
    (b.finish().expect("builds"), s)
}

#[test]
fn witnesses_replay_through_the_simulator() {
    let (rsn, seg) = mismatched_network();
    let report = verify(&rsn);
    let finding = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::SelectPathMismatch)
        .expect("mismatch is found");
    assert_eq!(finding.node, Some(seg));
    assert_eq!(finding.severity, Severity::Error);

    // The witness configuration must exhibit the disagreement in the
    // reference simulator, not merely in the CNF model.
    let cfg = finding.witness.as_ref().expect("witness attached");
    let selected = rsn.select(seg, cfg).expect("select evaluates");
    let on_path = rsn
        .trace_path(cfg)
        .map(|p| p.contains(seg))
        .unwrap_or(false);
    assert_ne!(selected, on_path, "witness does not replay");
}

#[test]
fn agrees_with_bmc_select_consistency_on_single_port_networks() {
    let mut networks = example_networks();
    networks.extend(embedded_networks());
    networks.push(mismatched_network().0);
    for rsn in &networks {
        let ports = rsn
            .node_ids()
            .filter(|&n| matches!(rsn.node(n).kind(), NodeKind::ScanOut))
            .count();
        if ports != 1 {
            continue; // BMC's encoding terminates at the primary port only.
        }
        let bmc = verify_select_consistency(rsn);
        let sat = verify(rsn);
        let sat_mismatch = sat
            .diagnostics
            .iter()
            .any(|d| d.code == Code::SelectPathMismatch);
        assert_eq!(
            bmc.is_some(),
            sat_mismatch,
            "network {}: BMC={:?} vs verifier:\n{}",
            rsn.name(),
            bmc.map(|m| m.segment),
            sat.render()
        );
    }
}

#[test]
fn table1_flow_with_verification_has_no_errors() {
    for name in ["u226", "d281"] {
        let rsn = generate(&by_name(name).expect("embedded SoC")).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::verified()).expect("verified synthesis");
        let report = result.verification.expect("verification report present");
        assert_eq!(report.error_count(), 0, "{}:\n{}", name, report.render());
        assert!(report.sat_queries > 0);
        assert!(report.checks_run.contains(&"augmentation"));
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != Code::SelectPathMismatch));
        for d in &report.diagnostics {
            // Residual findings on the synthesized network are at most
            // warnings (e.g. individually-redundant greedy augmentation
            // edges), never hard errors.
            assert_ne!(d.severity, Severity::Error, "{d}");
        }
    }
}
