//! End-to-end validation of the root-cause explanation engine: every
//! error-severity diagnostic carries an explanation whose cut, replayed
//! against the SAT model, provably eliminates the diagnostic.

use rsn_budget::Budget;
use rsn_core::{examples, ControlExpr, Rsn, RsnBuilder};
use rsn_verify::{
    explain_report, replay_eliminates, Code, NetworkSat, Severity, VerifyOptions, VerifyReport,
};

fn verify_and_explain(rsn: &Rsn) -> (NetworkSat, VerifyReport) {
    let sat = NetworkSat::build(rsn);
    let budget = Budget::unlimited();
    let mut report = rsn_verify::verify_on(rsn, &sat, VerifyOptions::default(), &budget);
    explain_report(rsn, &sat, &mut report, &budget);
    (sat, report)
}

/// Every error diagnostic must carry a complete explanation that
/// replays: applying the cut eliminates the finding.
fn assert_errors_replay(rsn: &Rsn, sat: &NetworkSat, report: &VerifyReport) {
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(!errors.is_empty(), "fixture should fail verification");
    for d in errors {
        let e = d
            .explanation
            .as_ref()
            .unwrap_or_else(|| panic!("error diagnostic {} has no explanation", d.code));
        assert!(!e.cut_nodes.is_empty(), "{}: empty cut", d.code);
        assert!(e.complete, "{}: incomplete under unlimited budget", d.code);
        assert_eq!(
            replay_eliminates(rsn, sat, d),
            Some(true),
            "{} on {}: replaying the cut does not eliminate the finding\n{}",
            d.code,
            d.node_name,
            e.render_lines().join("\n")
        );
    }
}

/// Two always-selected branches behind a mux: whichever branch is
/// deselected-by-steering while claiming selection is a mismatch.
fn mismatch_network() -> Rsn {
    let mut b = RsnBuilder::new("mismatch");
    let i = b.add_inputs(1);
    let a = b.add_segment("a", 2);
    let c = b.add_segment("c", 2);
    let m = b.add_mux("m", vec![a, c], vec![ControlExpr::input(i)]);
    b.connect(b.scan_in(), a);
    b.connect(b.scan_in(), c);
    b.connect(m, b.scan_out());
    b.set_select(a, ControlExpr::Const(true));
    b.set_select(c, ControlExpr::Const(true));
    b.finish().unwrap()
}

/// A 3-input mux addressed by (i, i): address 3 overflows.
fn overflow_network() -> Rsn {
    let mut b = RsnBuilder::new("mux-overflow");
    let i = b.add_inputs(1);
    let s0 = b.add_segment("s0", 1);
    let s1 = b.add_segment("s1", 1);
    let s2 = b.add_segment("s2", 1);
    let m = b.add_mux(
        "m",
        vec![s0, s1, s2],
        vec![ControlExpr::input(i), ControlExpr::input(i)],
    );
    b.connect(b.scan_in(), s0);
    b.connect(b.scan_in(), s1);
    b.connect(b.scan_in(), s2);
    b.connect(m, b.scan_out());
    b.finish().unwrap()
}

/// `ctl` feeds a downstream select but sits behind a mux port whose
/// decode condition is unsatisfiable: its shadow state is stuck forever.
fn uncontrollable_network() -> Rsn {
    let mut b = RsnBuilder::new("uncontrollable");
    let i = b.add_inputs(1);
    let ctl = b.add_segment("ctl", 2);
    let a = b.add_segment("a", 1);
    let s = b.add_segment("s", 1);
    let dead = ControlExpr::And(vec![
        ControlExpr::input(i),
        ControlExpr::Not(Box::new(ControlExpr::input(i))),
    ]);
    let m = b.add_mux("m", vec![a, ctl], vec![dead]);
    b.connect(b.scan_in(), ctl);
    b.connect(b.scan_in(), a);
    b.connect(m, s);
    b.connect(s, b.scan_out());
    b.set_select(s, ControlExpr::reg(ctl, 0));
    b.finish().unwrap()
}

/// The fault-tolerance synthesis shape from `rsn-fault`'s benchmarks:
/// four segments behind a 4-way mux steered by `CTL`'s shadow, with a
/// secondary scan-in/out pair. Every segment claims permanent selection,
/// so each off-steering address is a mismatch.
fn ft_fixture() -> Rsn {
    let mut b = RsnBuilder::new("ft-fixture");
    let ctl = b.add_segment("CTL", 2);
    b.set_select(ctl, ControlExpr::TRUE);
    b.connect(b.scan_in(), ctl);
    let si2 = b.add_secondary_scan_in("si2");
    let segs: Vec<_> = (0..4)
        .map(|k| {
            let s = b.add_segment(format!("S{k}"), 2 + k as u32);
            b.set_select(s, ControlExpr::TRUE);
            s
        })
        .collect();
    b.connect(ctl, segs[0]);
    b.connect(ctl, segs[1]);
    b.connect(si2, segs[2]);
    b.connect(si2, segs[3]);
    let m = b.add_mux(
        "M4",
        segs.clone(),
        vec![ControlExpr::reg(ctl, 0), ControlExpr::reg(ctl, 1)],
    );
    let so2 = b.add_secondary_scan_out("so2");
    b.connect(segs[3], so2);
    b.connect(m, b.scan_out());
    b.finish().unwrap()
}

#[test]
fn mismatch_explanations_replay() {
    let rsn = mismatch_network();
    let (sat, report) = verify_and_explain(&rsn);
    assert_errors_replay(&rsn, &sat, &report);
    // The mismatch explanations carry forcing cubes over the mux address
    // input and implicate the mux in the cut.
    let m = rsn.find("m").unwrap();
    for d in report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::SelectPathMismatch)
    {
        let e = d.explanation.as_ref().unwrap();
        assert!(
            !e.control_bits.is_empty(),
            "existence finding must carry a forcing cube"
        );
        assert!(e.cut_nodes.contains(&d.node.unwrap()));
        let _ = m;
    }
}

#[test]
fn overflow_explanations_replay() {
    let rsn = overflow_network();
    let (sat, report) = verify_and_explain(&rsn);
    assert_errors_replay(&rsn, &sat, &report);
    let overflow = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::MuxAddressOverflow)
        .expect("overflow diagnostic");
    let e = overflow.explanation.as_ref().unwrap();
    // Address (i, i) overflows exactly when the input is high: one
    // single-bit cube covers every failing configuration.
    assert_eq!(e.control_bits.len(), 1, "{}", e.render_lines().join("\n"));
    assert_eq!(e.control_bits[0].label, "in0");
    assert!(e.control_bits[0].value);
    assert!(e.other_cubes.is_empty());
}

#[test]
fn uncontrollable_register_explanation_names_steering_cut() {
    let rsn = uncontrollable_network();
    let (sat, report) = verify_and_explain(&rsn);
    assert_errors_replay(&rsn, &sat, &report);
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UncontrollableControlRegister)
        .expect("RSN010 diagnostic");
    let e = diag.explanation.as_ref().unwrap();
    // The refutation must rest on the mux steering logic, not on the
    // register's own path-membership definition.
    let m = rsn.find("m").unwrap();
    assert!(
        e.cut_nodes.contains(&m),
        "cut should implicate the steering mux\n{}",
        e.render_lines().join("\n")
    );
    assert!(
        e.hints.iter().any(|h| h.target == Some(m)),
        "expected a repair hint targeting the mux"
    );
    assert!(!e.harden_targets().is_empty());
}

#[test]
fn ft_fixture_explanations_pin_forcing_cubes() {
    let rsn = ft_fixture();
    let (sat, report) = verify_and_explain(&rsn);
    assert_errors_replay(&rsn, &sat, &report);

    // S0 is on-path exactly at address 0, so its mismatch is forced by
    // either CTL bit going high: two single-bit cubes cover everything.
    let s0 = rsn.find("S0").unwrap();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::SelectPathMismatch && d.node == Some(s0))
        .expect("S0 mismatch");
    let e = d.explanation.as_ref().unwrap();
    let mut cubes: Vec<Vec<String>> = std::iter::once(&e.control_bits)
        .chain(e.other_cubes.iter())
        .map(|c| {
            c.iter()
                .map(|f| format!("{}={}", f.label, f.value as u8))
                .collect()
        })
        .collect();
    cubes.sort();
    assert_eq!(
        cubes,
        vec![vec!["CTL[0]=1".to_string()], vec!["CTL[1]=1".to_string()]],
        "\n{}",
        e.render_lines().join("\n")
    );
    assert!(e.complete && e.minimized);
    // The steering mux is implicated and suggested for hardening.
    let m = rsn.find("M4").unwrap();
    assert!(e.cut_nodes.contains(&m));
    assert!(e.harden_targets().contains(&m));

    // CTL itself is off-path exactly when steered to the secondary
    // branch: a single CTL[1]=1 cube.
    let ctl = rsn.find("CTL").unwrap();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::SelectPathMismatch && d.node == Some(ctl))
        .expect("CTL mismatch");
    let e = d.explanation.as_ref().unwrap();
    assert_eq!(e.control_bits.len(), 1);
    assert_eq!(e.control_bits[0].label, "CTL[1]");
    assert!(e.control_bits[0].value);
    assert!(e.other_cubes.is_empty());

    // S3 drains to the secondary scan-out on every address: clean.
    let s3 = rsn.find("S3").unwrap();
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.code == Code::SelectPathMismatch && d.node == Some(s3)));
}

#[test]
fn fig2_stays_clean_and_unexplained() {
    let rsn = examples::fig2();
    let (_sat, report) = verify_and_explain(&rsn);
    assert!(report.is_clean(), "{}", report.render());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.explanation.is_none() || d.explanation.as_ref().unwrap().complete));
    // Rendering a clean report must not grow explanation chatter.
    assert!(!report.render().contains("root cause"));
}

#[test]
fn exhausted_budget_degrades_without_hanging() {
    let rsn = ft_fixture();
    let sat = NetworkSat::build(&rsn);
    let mut report =
        rsn_verify::verify_on(&rsn, &sat, VerifyOptions::default(), &Budget::unlimited());
    let starved = Budget::unlimited().with_work_limit(0);
    let _ = starved.check(); // trip it
    explain_report(&rsn, &sat, &mut report, &starved);
    for d in &report.diagnostics {
        let e = d.explanation.as_ref().expect("explanation still attached");
        assert!(!e.complete, "starved budget must mark explanations partial");
    }
}

#[test]
fn rendered_report_carries_explanation_lines() {
    let rsn = ft_fixture();
    let (_sat, report) = verify_and_explain(&rsn);
    let text = report.render();
    assert!(text.contains("root cause:"), "{text}");
    assert!(text.contains("force: "), "{text}");
    assert!(text.contains("hint: harden mux M4"), "{text}");
}
