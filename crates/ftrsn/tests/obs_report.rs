//! Golden observability test: a small fixed pipeline run must produce a
//! RunReport whose JSON parses and contains the key solver and synthesis
//! telemetry. Kept as a single test in its own binary so the process-global
//! registry sees exactly this pipeline.

use ftrsn::bmc::BmcChecker;
use ftrsn::core::examples::fig2;
use ftrsn::fault::{analyze, HardeningProfile};
use ftrsn::obs::{self, json, RunReport};
use ftrsn::synth::{synthesize, SolverChoice, SynthesisOptions};

#[test]
fn fixed_pipeline_report_contains_solver_and_phase_telemetry() {
    obs::reset();

    // A small fixed pipeline: exact-ILP synthesis of fig2, a BMC probe of
    // every segment, and the fault-tolerance metric of the original.
    let rsn = fig2();
    let mut opts = SynthesisOptions::new();
    opts.solver = SolverChoice::Ilp;
    let result = synthesize(&rsn, &opts).expect("synthesize");
    assert!(result.report.used_ilp);

    let mut checker = BmcChecker::new(&rsn, 2);
    for seg in rsn.segments() {
        assert!(checker.accessible(seg), "{}", rsn.node(seg).name());
    }
    let metric = analyze(&rsn, HardeningProfile::unhardened());
    assert!(metric.fault_count > 0);

    let report = RunReport::capture("golden");
    let text = report.to_json_pretty();
    let parsed = json::parse(&text).expect("report JSON parses");

    assert_eq!(
        parsed.get_path("name").and_then(|v| v.as_str()),
        Some("golden")
    );

    // SAT statistics from the BMC queries. All keys exist; the query
    // volume is non-zero.
    for key in [
        "sat.conflicts",
        "sat.decisions",
        "sat.propagations",
        "sat.solves",
    ] {
        assert!(
            parsed.get_path(&format!("counters/{key}")).is_some(),
            "missing counter {key} in {text}"
        );
    }
    let solves = parsed
        .get_path("counters/sat.solves")
        .and_then(|v| v.as_f64());
    assert!(solves.unwrap_or(0.0) >= 4.0, "BMC probed all fig2 segments");
    assert!(
        parsed
            .get_path("counters/sat.decisions")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
            > 0.0,
        "satisfiable probes must decide something"
    );

    // ILP branch & bound telemetry from the exact augmentation.
    let nodes = parsed
        .get_path("counters/ilp.nodes")
        .and_then(|v| v.as_f64());
    assert!(
        nodes.unwrap_or(0.0) >= 1.0,
        "ilp.nodes missing or zero in {text}"
    );
    assert!(
        parsed
            .get_path("counters/ilp.simplex_iters")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
            >= 1.0
    );
    assert!(parsed.get_path("counters/ilp.cut_rounds").is_some());

    // Per-phase synthesis timings.
    let gauges = parsed.get_path("gauges").expect("gauges object");
    for phase in ["dataflow", "augment", "build", "harden", "select"] {
        let key = format!("synth.phases.{phase}_ms");
        assert!(
            gauges.get(&key).and_then(|v| v.as_f64()).is_some(),
            "missing gauge {key} in {text}"
        );
    }

    // Histogram percentiles from the SAT and ILP calls above.
    for hist in [
        "sat.solve_ns",
        "sat.solve_conflicts",
        "ilp.node_ns",
        "ilp.solve_ns",
    ] {
        for field in ["count", "p50", "p90", "p99", "min", "max", "mean"] {
            assert!(
                parsed
                    .get_path(&format!("histograms/{hist}/{field}"))
                    .and_then(|v| v.as_f64())
                    .is_some(),
                "missing histograms/{hist}/{field} in {text}"
            );
        }
        let count = parsed
            .get_path(&format!("histograms/{hist}/count"))
            .and_then(|v| v.as_f64());
        assert!(count.unwrap_or(0.0) >= 1.0, "{hist} recorded nothing");
    }

    // Per-engine budget attribution; nothing tripped under the
    // unlimited budgets of this pipeline.
    for engine in ["sat", "ilp", "fault"] {
        assert!(
            parsed
                .get_path(&format!("counters/budget.spent{{engine={engine}}}"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                >= 1.0,
            "missing budget attribution for {engine} in {text}"
        );
    }
    let trips = parsed
        .get_path("budget_trips")
        .and_then(|v| v.as_arr())
        .expect("budget_trips array");
    assert!(trips.is_empty(), "unlimited budgets cannot trip");

    // Fault-simulation counters and the span tree.
    assert!(
        parsed
            .get_path("counters/fault.faults_simulated")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
            > 0.0
    );
    let spans = parsed.get_path("spans").expect("spans object");
    for path in ["synthesize", "synthesize/augment", "analyze"] {
        assert!(spans.get(path).is_some(), "missing span {path} in {text}");
    }

    // A second capture after reset is empty.
    obs::reset();
    let fresh = RunReport::capture("fresh");
    assert!(fresh.registry.is_empty());
    assert!(fresh.spans.is_empty());
}
