//! Source audit: library crates must route diagnostics through the
//! `rsn-obs` log facade, never `println!`/`eprintln!` directly. The only
//! sanctioned print site is the facade's own sink in `rsn-obs/src/log.rs`;
//! `crates/bench` is a CLI and prints its reports on purpose.

use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn engine_crates_have_no_direct_prints() {
    // The umbrella crate lives in crates/ftrsn; the workspace's crates
    // directory is its parent.
    let crates = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir")
        .to_path_buf();
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&crates).expect("crates dir") {
        let krate = entry.expect("crate entry").path();
        // The bench crate is the CLI layer: its tables and progress
        // output go to stdout by design.
        if krate.file_name().is_some_and(|n| n == "bench") {
            continue;
        }
        let src = krate.join("src");
        if src.is_dir() {
            rust_sources(&src, &mut sources);
        }
    }
    assert!(
        sources.len() > 10,
        "source walk looks broken: {} files",
        sources.len()
    );

    let mut offences = Vec::new();
    for path in sources {
        // The facade's sink is the one place allowed to write stderr.
        if path.ends_with("rsn-obs/src/log.rs") {
            continue;
        }
        // Binary entry points are CLI surface like crates/bench: the
        // rsn-serve daemon prints its listen address and shutdown notice.
        if path.components().any(|c| c.as_os_str() == "bin") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read source");
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            if trimmed.contains("println!") || trimmed.contains("eprintln!") {
                offences.push(format!("{}:{}: {}", path.display(), lineno + 1, trimmed));
            }
        }
    }
    assert!(
        offences.is_empty(),
        "direct prints found in library crates — use the rsn-obs log \
         facade (error!/warn!/info!/debug!/trace!) instead:\n{}",
        offences.join("\n")
    );
}
