//! Integration: high-level access sessions drive both the original and
//! the synthesized fault-tolerant network, and the fault-tolerant
//! structure stays transparently usable for normal instrument access.

use ftrsn::core::AccessSession;
use ftrsn::itc02::parse_soc;
use ftrsn::sib::generate;
use ftrsn::synth::{synthesize, SynthesisOptions};

#[test]
fn sessions_roundtrip_on_original_and_ft_network() {
    let soc = parse_soc("SocName s\n1 0 0 0 2 : 5 3\n2 0 0 0 1 : 4\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");

    for network in [&rsn, &ft.rsn] {
        let mut session = AccessSession::new(network);
        let leaf = network.find("m1.c0.seg").expect("leaf exists in both");
        // The fault-tolerant network may have appended routing bits to the
        // register; write the payload and keep the routing bits at 0.
        let len = network.node(leaf).as_segment().expect("segment").length as usize;
        let mut pattern = vec![true, false, true, true, false];
        pattern.resize(len, false);
        session.write(leaf, &pattern).expect("write");
        let (value, _) = session.read(leaf).expect("read");
        assert_eq!(value, pattern, "{}", network.name());
    }
}

#[test]
fn ft_session_accesses_every_original_segment() {
    let soc = parse_soc("SocName s\n1 0 0 0 1 : 4\n2 0 0 0 2 : 2 3\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
    let mut session = AccessSession::new(&ft.rsn);
    for seg in rsn.segments() {
        let name = rsn.node(seg).name().to_string();
        let id = ft.rsn.find(&name).expect("original segment preserved");
        let len = ft.rsn.node(id).as_segment().expect("segment").length as usize;
        // Routing-neutral pattern: original registers may own routing bits.
        let pattern = vec![false; len];
        session
            .write(id, &pattern)
            .unwrap_or_else(|e| panic!("write {name}: {e}"));
        let (value, _) = session
            .read(id)
            .unwrap_or_else(|e| panic!("read {name}: {e}"));
        assert_eq!(value, pattern, "{name}");
    }
    assert!(session.accesses() >= 2 * rsn.segments().count() as u64);
}

#[test]
fn session_cycle_accounting_matches_latency_report_scale() {
    let soc = parse_soc("SocName s\n1 0 0 0 2 : 8 8\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    let report = rsn.latency_report();
    let leaf = rsn.find("m1.c0.seg").expect("leaf");
    let expected = report.cycles(leaf).expect("plannable");
    let mut session = AccessSession::new(&rsn);
    let cycles = session.write(leaf, &[false; 8]).expect("write");
    assert_eq!(
        cycles, expected,
        "session accounting equals the latency report"
    );
}
