//! Randomized tests over the core invariants of the toolchain: random
//! SoCs, random networks, random formulas and programs.
//!
//! Previously written with proptest; now driven by a deterministic
//! generator so the workspace carries no external dependencies and every
//! run exercises the same cases.

use ftrsn::core::examples::fig2;
use ftrsn::core::{ControlExpr, NodeId};
use ftrsn::fault::{accessibility, analyze, FaultEffect, HardeningProfile};
use ftrsn::graph::vertex_independent_paths;
use ftrsn::ilp::{solve_ilp, IlpError, Problem};
use ftrsn::itc02::{Module, Soc};
use ftrsn::sat::{Lit, Solver, Var};
use ftrsn::sib::generate;
use ftrsn::synth::{augment_greedy, augmented_graph, AugmentOptions, Dataflow};
use ftrsn::synth::{synthesize, SynthesisOptions};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// A small random SoC (1–4 modules, 1–3 chains each).
fn random_soc(rng: &mut Rng) -> Soc {
    let n_modules = 1 + rng.below(4) as usize;
    let modules = (0..n_modules)
        .map(|i| {
            let n_chains = 1 + rng.below(3) as usize;
            let chains: Vec<u32> = (0..n_chains).map(|_| 1 + rng.below(39) as u32).collect();
            Module::top(format!("m{i}"), chains)
        })
        .collect();
    Soc {
        name: "prop".into(),
        modules,
        top_registers: vec![8],
    }
}

#[test]
fn generated_sib_rsn_obeys_the_counting_contract() {
    let mut rng = Rng(0xf75_0001);
    for _case in 0..48 {
        let soc = random_soc(&mut rng);
        let rsn = generate(&soc).expect("generate");
        let chains = soc.total_chains();
        assert_eq!(rsn.muxes().count(), soc.modules.len() + chains);
        assert_eq!(
            rsn.segments().count(),
            soc.modules.len() + 2 * chains + soc.top_registers.len()
        );
        assert_eq!(
            rsn.total_bits(),
            (soc.modules.len() + chains) as u64 + soc.payload_bits()
        );
    }
}

#[test]
fn every_segment_of_a_generated_rsn_is_accessible() {
    let mut rng = Rng(0xf75_0002);
    for _case in 0..24 {
        let soc = random_soc(&mut rng);
        let rsn = generate(&soc).expect("generate");
        for seg in rsn.segments() {
            assert!(rsn.is_accessible(seg));
        }
        // And the structural engine agrees in the fault-free case.
        let acc = accessibility(&rsn, &FaultEffect::benign());
        assert_eq!(acc.accessible_segments, acc.total_segments);
    }
}

#[test]
fn augmentation_invariants_on_random_socs() {
    let mut rng = Rng(0xf75_0003);
    for _case in 0..24 {
        let soc = random_soc(&mut rng);
        let rsn = generate(&soc).expect("generate");
        let df = Dataflow::extract(&rsn);
        let aug = augment_greedy(&df, &AugmentOptions::default());
        let g = augmented_graph(&df, &aug);
        assert!(g.is_acyclic());
        assert_eq!(aug.repairs, 0);
        for v in 0..df.len() {
            if v == df.root || v == df.sink {
                continue;
            }
            // Added edges respect the level requirement of E_P.
            for &(i, j) in &aug.added {
                assert!(df.levels[j] >= df.levels[i]);
            }
            // Menger: two vertex-independent root and sink paths wherever
            // the degree constraint is enforceable (vertices next to the
            // root may be exempt; check only those with an added in-edge).
            if aug.added.iter().any(|&(_, j)| j == v) {
                assert!(vertex_independent_paths(&g, df.root, v) >= 2);
            }
        }
    }
}

#[test]
fn synthesis_preserves_reset_path_on_random_socs() {
    let mut rng = Rng(0xf75_0004);
    for _case in 0..12 {
        let soc = random_soc(&mut rng);
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let orig: Vec<String> = rsn
            .trace_path(&rsn.reset_config())
            .expect("orig")
            .segments(&rsn)
            .map(|s| rsn.node(s).name().to_string())
            .collect();
        let ft: Vec<String> = result
            .rsn
            .trace_path(&result.rsn.reset_config())
            .expect("ft")
            .segments(&result.rsn)
            .map(|s| result.rsn.node(s).name().to_string())
            .collect();
        assert_eq!(orig, ft);
    }
}

#[test]
fn ft_metric_dominates_original_on_random_socs() {
    let mut rng = Rng(0xf75_0005);
    for _case in 0..8 {
        let soc = random_soc(&mut rng);
        let rsn = generate(&soc).expect("generate");
        let before = analyze(&rsn, HardeningProfile::unhardened());
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let after = analyze(&result.rsn, HardeningProfile::hardened());
        assert!(after.worst_segments >= before.worst_segments);
        assert!(after.avg_segments + 1e-9 >= before.avg_segments);
        // The headline property: no single fault loses more than a couple
        // of segments in the fault-tolerant network.
        let total = result.rsn.segments().count() as f64;
        assert!(
            after.worst_segments >= (total - 2.0) / total,
            "worst {} on {} segments",
            after.worst_segments,
            total
        );
    }
}

#[test]
fn random_cnf_agrees_with_brute_force() {
    let mut rng = Rng(0xf75_0006);
    for _case in 0..48 {
        let n_clauses = 1 + rng.below(23) as usize;
        let clauses: Vec<Vec<(u32, bool)>> = (0..n_clauses)
            .map(|_| {
                let len = 1 + rng.below(3) as usize;
                (0..len)
                    .map(|_| (rng.below(6) as u32, rng.bool()))
                    .collect()
            })
            .collect();
        let mut solver = Solver::new();
        for _ in 0..6 {
            solver.new_var();
        }
        let mut trivially_unsat = false;
        for c in &clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&(v, pos)| Lit::with_polarity(Var(v), pos))
                .collect();
            if !solver.add_clause(lits) {
                trivially_unsat = true;
            }
        }
        let brute = (0u32..64).any(|m| {
            clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| (((m >> v) & 1) == 1) == pos))
        });
        let got = if trivially_unsat {
            false
        } else {
            solver.solve()
        };
        assert_eq!(got, brute, "clauses {clauses:?}");
    }
}

#[test]
fn random_binary_ilp_agrees_with_brute_force() {
    let mut rng = Rng(0xf75_0007);
    for _case in 0..48 {
        let n = 3 + rng.below(3) as usize;
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_binary_var(format!("x{i}"), rng.below(16) as f64 - 8.0))
            .collect();
        let n_rows = 1 + rng.below(3);
        for _ in 0..n_rows {
            let terms: Vec<_> = vars
                .iter()
                .map(|&v| (v, rng.below(8) as f64 - 4.0))
                .collect();
            let rhs = rng.below(12) as f64 - 4.0;
            if rng.bool() {
                p.add_le(terms, rhs);
            } else {
                p.add_ge(terms, rhs);
            }
        }
        let mut best: Option<f64> = None;
        for m in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| f64::from((m >> j) & 1)).collect();
            if p.is_feasible(&x, 1e-9) {
                let obj = p.objective_value(&x);
                best = Some(best.map_or(obj, |b: f64| b.min(obj)));
            }
        }
        match (solve_ilp(&p), best) {
            (Ok(sol), Some(b)) => {
                assert!((sol.objective - b).abs() < 1e-5);
                assert!(p.is_feasible(&sol.values, 1e-5));
            }
            (Err(IlpError::Infeasible), None) => {}
            (got, want) => panic!("mismatch {got:?} vs {want:?}"),
        }
    }
}

#[test]
fn expr_simplify_is_equivalence_preserving() {
    let mut rng = Rng(0xf75_0008);
    for _case in 0..48 {
        // Build a random expression over register bits of fig2's A.
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let mut stack: Vec<ControlExpr> = vec![ControlExpr::reg(a, 0)];
        let n_ops = 1 + rng.below(11);
        for _ in 0..n_ops {
            let e1 = stack.pop().unwrap_or(ControlExpr::TRUE);
            let leaf = if rng.below(3) == 0 {
                ControlExpr::reg(a, 0)
            } else {
                ControlExpr::reg(a, 1)
            };
            let combined = match rng.below(4) {
                0 => e1 & leaf,
                1 => e1 | leaf,
                2 => !e1,
                _ => ControlExpr::And(vec![e1, ControlExpr::TRUE, leaf]),
            };
            stack.push(combined);
        }
        let expr = stack.pop().expect("nonempty");
        let simplified = expr.simplified();
        for m in 0u8..4 {
            let mut reg = |n: NodeId, b: u32| n == a && ((m >> b.min(1)) & 1) == 1;
            let v1 = expr.eval_with(&mut reg, &mut |_| false);
            let v2 = simplified.eval_with(&mut reg, &mut |_| false);
            assert_eq!(v1, v2);
        }
    }
}

#[test]
fn engine_agrees_with_bmc_on_random_socs() {
    // Random single-module SoCs; randomly chosen faults; the structural
    // engine and the BMC must agree on every segment.
    let mut rng = Rng(0xf75_0009);
    for _case in 0..24 {
        let n_chains = 1 + rng.below(2) as usize;
        let chains: Vec<u32> = (0..n_chains).map(|_| 1 + rng.below(7) as u32).collect();
        let soc = Soc {
            name: "prop".into(),
            modules: vec![Module::top("m", chains)],
            top_registers: vec![4],
        };
        let rsn = generate(&soc).expect("generate");
        let faults = ftrsn::fault::fault_universe(&rsn);
        let fault = faults[rng.below(faults.len() as u64) as usize];
        let effect = ftrsn::fault::effect_of(&rsn, &fault, HardeningProfile::unhardened());
        let structural = accessibility(&rsn, &effect);
        for (seg, bmc_ok) in ftrsn::bmc::bmc_accessibility(&rsn, &effect, 3) {
            assert_eq!(
                structural.accessible[seg.index()],
                bmc_ok,
                "fault {} segment {}",
                fault,
                rsn.node(seg).name()
            );
        }
    }
}
