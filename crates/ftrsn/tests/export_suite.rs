//! Suite-wide export checks: every embedded benchmark (original and
//! fault-tolerant) emits structurally sane Verilog and ICL, and PDL
//! scripts for sampled accesses.

use ftrsn::export::{read_access_pdl, to_icl, to_verilog, write_access_pdl};
use ftrsn::itc02::suite;
use ftrsn::sib::generate;
use ftrsn::synth::{synthesize, SynthesisOptions};

#[test]
fn whole_suite_exports_verilog_and_icl() {
    for soc in suite() {
        let rsn = generate(&soc).expect("generate");
        let v = to_verilog(&rsn);
        let icl = to_icl(&rsn);
        assert!(
            v.contains(&format!("module {} (", soc.name)),
            "{}",
            soc.name
        );
        assert!(v.contains("endmodule"), "{}", soc.name);
        assert_eq!(
            icl.matches('{').count(),
            icl.matches('}').count(),
            "{}: unbalanced ICL",
            soc.name
        );
        // One ScanRegister per segment.
        assert_eq!(
            icl.matches("ScanRegister ").count(),
            rsn.segments().count(),
            "{}",
            soc.name
        );
        // One ScanMux per multiplexer.
        assert_eq!(
            icl.matches("ScanMux ").count(),
            rsn.muxes().count(),
            "{}",
            soc.name
        );
    }
}

#[test]
fn small_suite_ft_exports() {
    for name in ["u226", "x1331", "q12710"] {
        let soc = suite()
            .into_iter()
            .find(|s| s.name == name)
            .expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let v = to_verilog(&ft.rsn);
        assert!(v.contains("si2"), "{name}: secondary scan-in");
        assert!(v.contains("/* TMR address net */"), "{name}");
        let icl = to_icl(&ft.rsn);
        assert!(icl.contains("ScanInPort SI2;"), "{name}");
    }
}

#[test]
fn pdl_scripts_cover_sampled_accesses() {
    let soc = suite()
        .into_iter()
        .find(|s| s.name == "q12710")
        .expect("embedded");
    let rsn = generate(&soc).expect("generate");
    let reset = rsn.reset_config();
    for seg in rsn.segments().take(10) {
        let plan = rsn.plan_access(seg, &reset).expect("plan");
        let len = rsn.node(seg).as_segment().expect("segment").length as usize;
        let value = vec![false; len];
        let w = write_access_pdl(&rsn, &plan, &value);
        let r = read_access_pdl(&rsn, &plan, None);
        // One iApply per setup CSU plus the data apply.
        assert_eq!(
            w.matches("iApply;").count(),
            plan.csu_count() + 1,
            "{}",
            rsn.node(seg).name()
        );
        assert!(r.contains("iRead"), "{}", rsn.node(seg).name());
    }
}
