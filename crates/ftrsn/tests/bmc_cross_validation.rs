//! Cross-validation of the fast structural accessibility engine against
//! the bounded-model-checking reference semantics (experiment V1 in
//! DESIGN.md): for small networks and the exhaustive fault universe, both
//! engines must agree on every (fault, segment) verdict.

use ftrsn::bmc::bmc_accessibility;
use ftrsn::core::examples::{chain, fig2, sib_tree};
use ftrsn::core::Rsn;
use ftrsn::fault::{accessibility, effect_of, fault_universe, HardeningProfile};
use ftrsn::itc02::parse_soc;
use ftrsn::sib::generate;
use ftrsn::synth::{synthesize, SelectMode, SynthesisOptions};

/// Exhaustively compares both engines over the full fault universe.
fn cross_validate(rsn: &Rsn, profile: HardeningProfile, steps: usize) {
    for fault in fault_universe(rsn) {
        let effect = effect_of(rsn, &fault, profile);
        let structural = accessibility(rsn, &effect);
        for (seg, bmc_ok) in bmc_accessibility(rsn, &effect, steps) {
            assert_eq!(
                structural.accessible[seg.index()],
                bmc_ok,
                "disagreement: network {}, fault {fault}, segment {}",
                rsn.name(),
                rsn.node(seg).name()
            );
        }
    }
}

#[test]
fn fig2_agrees() {
    cross_validate(&fig2(), HardeningProfile::unhardened(), 2);
}

#[test]
fn chain_agrees() {
    cross_validate(&chain(4, 2), HardeningProfile::unhardened(), 1);
}

#[test]
fn sib_tree_agrees() {
    cross_validate(&sib_tree(1, 2, 3), HardeningProfile::unhardened(), 3);
}

#[test]
fn small_soc_agrees() {
    let soc = parse_soc("SocName v\n1 0 0 0 2 : 3 2\n2 0 0 0 1 : 4\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    cross_validate(&rsn, HardeningProfile::unhardened(), 3);
}

#[test]
fn synthesized_ft_network_agrees() {
    // The FT network without secondary ports (BMC precondition), with
    // materialized selects so fault-free validity is meaningful.
    let rsn = fig2();
    let mut opts = SynthesisOptions::new();
    opts.secondary_ports = false;
    opts.select_mode = SelectMode::Always;
    let result = synthesize(&rsn, &opts).expect("synthesize");
    cross_validate(&result.rsn, HardeningProfile::hardened(), 5);
}

#[test]
fn bmc_finds_no_access_below_required_depth() {
    // Sanity on the unrolling bound: a depth-2 SIB tree leaf needs two
    // CSUs; with fewer the BMC must answer "inaccessible".
    let rsn = sib_tree(2, 2, 2);
    let leaf = rsn
        .segments()
        .find(|&s| rsn.node(s).name().ends_with(".seg"))
        .expect("leaf");
    let mut shallow = ftrsn::bmc::BmcChecker::new(&rsn, 1);
    assert!(!shallow.accessible(leaf));
    let mut deep = ftrsn::bmc::BmcChecker::new(&rsn, 2);
    assert!(deep.accessible(leaf));
}
