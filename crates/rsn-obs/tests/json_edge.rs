//! Edge-case coverage for the hand-rolled JSON model: string escaping,
//! nested structures and number round-tripping at the extremes the
//! registry actually produces (`u64` counters, negative and fractional
//! gauges).

use rsn_obs::json::{self, Json};

fn roundtrip(v: &Json) -> Json {
    json::parse(&v.to_string()).expect("writer output parses")
}

#[test]
fn escaped_strings_roundtrip() {
    for s in [
        "plain",
        "with \"quotes\" inside",
        "back\\slash",
        "line\nbreak\ttab\rreturn",
        "control \u{1} \u{1f} chars",
        "unicode: µs → 3·2^k 🧪",
        "",
    ] {
        let v = Json::Str(s.to_string());
        assert_eq!(roundtrip(&v), v, "{s:?}");
    }
    // Explicit escape forms the writer must produce.
    assert_eq!(Json::Str("a\"b".into()).to_string(), r#""a\"b""#);
    assert_eq!(Json::Str("a\\b".into()).to_string(), r#""a\\b""#);
    assert_eq!(Json::Str("\u{1}".into()).to_string(), "\"\\u0001\"");
}

#[test]
fn parser_handles_unicode_escapes() {
    let v = json::parse(r#""µs and A""#).expect("parses");
    assert_eq!(v.as_str(), Some("µs and A"));
}

#[test]
fn nested_arrays_roundtrip() {
    let v = json::parse("[[1, [2, [3, []]]], [], [[[]]]]").expect("parses");
    assert_eq!(roundtrip(&v), v);
    let inner = v.as_arr().unwrap()[0].as_arr().unwrap()[1]
        .as_arr()
        .unwrap();
    assert_eq!(inner[0].as_f64(), Some(2.0));
    // Arrays nested inside objects inside arrays.
    let mixed = json::parse(r#"[{"a": [1, {"b": []}]}]"#).expect("parses");
    assert_eq!(roundtrip(&mixed), mixed);
}

#[test]
fn u64_max_counter_survives_as_f64() {
    // Counters serialize through f64, so u64::MAX lands on the nearest
    // representable float (2^64). The wire value must parse back to
    // exactly that float — large magnitudes must not fall into the
    // integer-formatting fast path and truncate.
    let as_f64 = u64::MAX as f64;
    let v = Json::Num(as_f64);
    let text = v.to_string();
    let back = json::parse(&text).expect("parses");
    assert_eq!(back.as_f64(), Some(as_f64), "wire form {text}");
    // Values within f64's exact-integer range survive bit-exactly.
    for exact in [0u64, 1, (1 << 53) - 1] {
        let v = Json::Num(exact as f64);
        assert_eq!(roundtrip(&v).as_f64(), Some(exact as f64));
    }
}

#[test]
fn negative_and_fractional_gauges_roundtrip() {
    for g in [-1.0, -0.25, 0.1, 3.5e-9, -2.75e12, 1234.5678, f64::MIN] {
        let v = Json::Num(g);
        assert_eq!(roundtrip(&v).as_f64(), Some(g), "{g}");
    }
    // Non-finite gauges degrade to null rather than emitting invalid JSON.
    assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
}

#[test]
fn malformed_documents_are_rejected() {
    for bad in [
        "",
        "{",
        "[1, 2",
        "{\"a\" 1}",
        "\"unterminated",
        "[1] trailing",
        "{\"a\": 01x}",
    ] {
        assert!(json::parse(bad).is_err(), "{bad:?} should not parse");
    }
}
