//! Unit coverage for the observability crate: span nesting and
//! aggregation, registry merge semantics, the JSON writer/parser pair
//! and report capture.
//!
//! Tests in one binary share the process-global registry and run
//! concurrently, so each test uses names unique to itself and compares
//! snapshots instead of calling `reset()`.

use rsn_obs::{
    counter_add, counter_get, gauge_set, json, metrics_snapshot, span_snapshot, timed, Registry,
    RunReport, Span,
};

#[test]
fn spans_nest_into_slash_paths_and_aggregate_calls() {
    {
        let root = Span::enter("t1_outer");
        assert_eq!(root.path(), "t1_outer");
        for _ in 0..3 {
            let child = root.child("inner");
            assert_eq!(child.path(), "t1_outer/inner");
            let grand = child.child("leaf");
            assert_eq!(grand.path(), "t1_outer/inner/leaf");
        }
    }
    let spans = span_snapshot();
    let outer = spans.get("t1_outer").expect("outer recorded");
    let inner = spans.get("t1_outer/inner").expect("inner recorded");
    let leaf = spans.get("t1_outer/inner/leaf").expect("leaf recorded");
    assert_eq!(outer.calls, 1);
    assert_eq!(inner.calls, 3);
    assert_eq!(leaf.calls, 3);
    // Wall-clock containment: the outer span was live for at least as
    // long as all inner spans together.
    assert!(outer.total_ns >= inner.total_ns);
    assert!(inner.total_ns >= leaf.total_ns);
}

#[test]
fn timed_returns_the_closure_result() {
    let v = timed("t2_work", || 6 * 7);
    assert_eq!(v, 42);
    assert_eq!(span_snapshot().get("t2_work").map(|s| s.calls), Some(1));
}

#[test]
fn sibling_spans_do_not_nest() {
    {
        let _a = Span::enter("t3_a");
    }
    {
        let _b = Span::enter("t3_b");
    }
    let spans = span_snapshot();
    assert!(spans.contains_key("t3_a"));
    assert!(spans.contains_key("t3_b"));
    assert!(
        !spans.contains_key("t3_a/t3_b"),
        "dropped span must pop the stack"
    );
}

#[test]
fn global_counters_accumulate_and_gauges_overwrite() {
    counter_add("t4.hits", 2);
    counter_add("t4.hits", 3);
    assert_eq!(counter_get("t4.hits"), 5);
    gauge_set("t4.temp", 1.5);
    gauge_set("t4.temp", 2.5);
    let snap = metrics_snapshot();
    assert_eq!(snap.gauges.get("t4.temp"), Some(&2.5));
    assert_eq!(snap.counters.get("t4.hits"), Some(&5));
}

#[test]
fn registry_merge_adds_counters_and_overwrites_gauges() {
    let mut a = Registry::new();
    a.counter_add("x", 10);
    a.counter_add("only_a", 1);
    a.gauge_set("g", 1.0);
    let mut b = Registry::new();
    b.counter_add("x", 5);
    b.counter_add("only_b", 7);
    b.gauge_set("g", 9.0);
    a.merge(&b);
    assert_eq!(a.counters.get("x"), Some(&15));
    assert_eq!(a.counters.get("only_a"), Some(&1));
    assert_eq!(a.counters.get("only_b"), Some(&7));
    assert_eq!(a.gauges.get("g"), Some(&9.0));
}

#[test]
fn json_writer_and_parser_roundtrip() {
    let mut obj = json::Json::obj();
    obj.set(
        "name",
        json::Json::Str("quote \" slash \\ newline \n".into()),
    );
    obj.set("count", json::Json::Num(42.0));
    obj.set("ratio", json::Json::Num(0.125));
    obj.set("flag", json::Json::Bool(true));
    obj.set("nothing", json::Json::Null);
    obj.set(
        "list",
        json::Json::Arr(vec![json::Json::Num(1.0), json::Json::Str("two".into())]),
    );
    for text in [obj.to_string(), obj.to_string_pretty(2)] {
        let back = json::parse(&text).expect("parse");
        assert_eq!(back, obj, "roundtrip through {text:?}");
    }
    // Integral numbers print without a fraction.
    assert!(obj.to_string().contains("\"count\":42"));
}

#[test]
fn json_parser_rejects_garbage() {
    assert!(json::parse("{").is_err());
    assert!(json::parse("[1,]").is_err());
    assert!(json::parse("{\"a\":1} trailing").is_err());
    assert!(json::parse("\"unterminated").is_err());
}

#[test]
fn report_capture_serializes_counters_gauges_and_spans() {
    counter_add("t8.solves", 4);
    gauge_set("t8.load", 0.75);
    timed("t8_phase", || ());
    let report = RunReport::capture("unit");
    let parsed = json::parse(&report.to_json()).expect("report json parses");
    assert_eq!(
        parsed.get_path("name").and_then(|v| v.as_str()),
        Some("unit")
    );
    assert_eq!(
        parsed
            .get_path("counters/t8.solves")
            .and_then(|v| v.as_f64()),
        Some(4.0)
    );
    assert_eq!(
        parsed.get_path("gauges/t8.load").and_then(|v| v.as_f64()),
        Some(0.75)
    );
    let phase = parsed
        .get_path("spans")
        .and_then(|s| s.get("t8_phase"))
        .expect("span key");
    assert_eq!(phase.get("calls").and_then(|v| v.as_f64()), Some(1.0));
    assert!(phase.get("total_ms").and_then(|v| v.as_f64()).is_some());
}
