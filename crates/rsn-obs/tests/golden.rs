//! Golden outputs: the Chrome-trace exporter and the Prometheus renderer
//! are pure functions over hand-constructible inputs, so their exact
//! output is pinned here. A change to either wire format must update
//! these strings consciously.

use rsn_obs::{
    chrome_trace, json, render_prometheus, Registry, TraceEvent, TraceEventKind, TraceThread,
};

fn sample_threads() -> Vec<TraceThread> {
    vec![
        TraceThread {
            tid: 0,
            events: vec![
                TraceEvent {
                    name: "sweep_worker",
                    kind: TraceEventKind::Begin,
                    ts_ns: 1_000,
                },
                TraceEvent {
                    name: "claim_batch",
                    kind: TraceEventKind::Instant,
                    ts_ns: 1_500,
                },
                TraceEvent {
                    name: "sweep_worker",
                    kind: TraceEventKind::End,
                    ts_ns: 4_000,
                },
            ],
            dropped: 0,
        },
        TraceThread {
            tid: 1,
            events: vec![TraceEvent {
                name: "sat_solve",
                kind: TraceEventKind::Begin,
                ts_ns: 2_000,
            }],
            dropped: 2,
        },
    ]
}

#[test]
fn chrome_trace_golden() {
    let doc = chrome_trace(&sample_threads());
    let expected = concat!(
        r#"{"displayTimeUnit":"ms","droppedEvents":2,"traceEvents":["#,
        r#"{"args":{"name":"worker-0"},"name":"thread_name","ph":"M","pid":1,"tid":0},"#,
        r#"{"name":"sweep_worker","ph":"B","pid":1,"tid":0,"ts":1},"#,
        r#"{"name":"claim_batch","ph":"i","pid":1,"s":"t","tid":0,"ts":1.5},"#,
        r#"{"name":"sweep_worker","ph":"E","pid":1,"tid":0,"ts":4},"#,
        r#"{"args":{"name":"worker-1"},"name":"thread_name","ph":"M","pid":1,"tid":1},"#,
        r#"{"name":"sat_solve","ph":"B","pid":1,"tid":1,"ts":2}"#,
        r#"]}"#,
    );
    assert_eq!(doc.to_string(), expected);
}

#[test]
fn chrome_trace_is_valid_perfetto_shape() {
    // Re-parse the export and verify the invariants Perfetto relies on:
    // every event has name/ph/pid/tid/ts, phases are B/E/i/M, and begin/
    // end events balance per thread.
    let doc = chrome_trace(&sample_threads());
    let parsed = json::parse(&doc.to_string()).expect("trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    let mut depth = std::collections::HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(matches!(ph, "B" | "E" | "i" | "M"), "{ph}");
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        assert_eq!(e.get("pid").and_then(|v| v.as_f64()), Some(1.0));
        let tid = e.get("tid").and_then(|v| v.as_f64()).expect("tid") as u64;
        match ph {
            "B" => *depth.entry(tid).or_insert(0i64) += 1,
            "E" => *depth.entry(tid).or_insert(0i64) -= 1,
            "i" => assert_eq!(e.get("s").and_then(|v| v.as_str()), Some("t")),
            _ => continue,
        }
        assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
    }
    // tid 0 balances; tid 1's dangling Begin is legal (truncated trace).
    assert_eq!(depth.get(&0), Some(&0));
}

#[test]
fn prometheus_golden() {
    let mut reg = Registry::new();
    reg.counter_add("sat.solves", 7);
    reg.counter_add("budget.spent{engine=sat}", 120);
    reg.counter_add("budget.spent{engine=ilp}", 33);
    reg.gauge_set("fault.collapse_ratio", 0.625);
    reg.gauge_set("bench.delta", -1.5);
    reg.hist_record("sat.solve_ns", 1);
    reg.hist_record("sat.solve_ns", 3);
    reg.hist_record("sat.solve_ns", 900);
    let expected = "\
# TYPE rsn_budget_spent counter
rsn_budget_spent{engine=\"ilp\"} 33
rsn_budget_spent{engine=\"sat\"} 120
# TYPE rsn_sat_solves counter
rsn_sat_solves 7
# TYPE rsn_bench_delta gauge
rsn_bench_delta -1.5
# TYPE rsn_fault_collapse_ratio gauge
rsn_fault_collapse_ratio 0.625
# TYPE rsn_sat_solve_ns histogram
rsn_sat_solve_ns_bucket{le=\"1\"} 1
rsn_sat_solve_ns_bucket{le=\"3\"} 2
rsn_sat_solve_ns_bucket{le=\"7\"} 2
rsn_sat_solve_ns_bucket{le=\"15\"} 2
rsn_sat_solve_ns_bucket{le=\"31\"} 2
rsn_sat_solve_ns_bucket{le=\"63\"} 2
rsn_sat_solve_ns_bucket{le=\"127\"} 2
rsn_sat_solve_ns_bucket{le=\"255\"} 2
rsn_sat_solve_ns_bucket{le=\"511\"} 2
rsn_sat_solve_ns_bucket{le=\"1023\"} 3
rsn_sat_solve_ns_bucket{le=\"+Inf\"} 3
rsn_sat_solve_ns_sum 904
rsn_sat_solve_ns_count 3
";
    assert_eq!(render_prometheus(&reg), expected);
}
