//! Fixed-bucket log2 histograms for latency and work distributions.
//!
//! A [`Histogram`] is 64 power-of-two buckets plus exact `count`, `sum`,
//! `min` and `max`: value `v` lands in bucket `floor(log2(max(v, 1)))`,
//! so bucket `i` covers `[2^i, 2^(i+1) - 1]` (bucket 0 additionally holds
//! zero). Recording is branch-light (a leading-zeros count and a few
//! adds), the memory footprint is constant, and two histograms merge by
//! bucket-wise addition — the same map-reduce shape as
//! [`Registry`](crate::Registry) counters.
//!
//! Percentiles ([`Histogram::percentile`]) are deterministic upper-bound
//! estimates: the reported quantile is the upper edge of the bucket the
//! target rank falls into, clamped to the exact observed `[min, max]`.
//! The estimate is therefore never below the true quantile's bucket and
//! never outside the observed range, and it is bit-stable across runs
//! recording the same values in any order.

/// Number of power-of-two buckets: one per possible `floor(log2(v))`.
pub const HIST_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// conflict counts, tree depths, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Sample count per power-of-two bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (meaningless while `count == 0`).
    pub min: u64,
    /// Largest sample (meaningless while `count == 0`).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `i`: `2^(i+1) - 1`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of all samples, 0.0 while empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Deterministic quantile estimate for `q` in `[0, 1]`: the upper
    /// edge of the bucket holding the `ceil(q * count)`-th smallest
    /// sample, clamped to the observed `[min, max]`. Returns 0 while
    /// empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn records_and_estimates() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.sum, 5050);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        // The true p50 is 50; the estimate is its bucket's upper edge
        // (bucket 5 = [32, 63]), never below the truth's bucket and never
        // above the observed max.
        let p50 = h.percentile(0.5);
        assert!((50..=63).contains(&p50), "{p50}");
        assert_eq!(h.percentile(1.0), 100);
        assert!(h.percentile(0.0) >= 1);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let values = [5u64, 900, 3, 77, 77, 12, 4096, 1];
        for &v in &values {
            a.record(v);
        }
        for &v in values.iter().rev() {
            b.record(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.percentile(0.9), b.percentile(0.9));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 70, 7000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn zero_and_max_are_representable() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[63], 1);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of wrapping");
    }
}
