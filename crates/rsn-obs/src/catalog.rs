//! The metric-name catalog: one `const` list of every counter, gauge and
//! histogram the workspace emits.
//!
//! The catalog exists so documentation tables (README/DESIGN) and the
//! names actually reaching the registry cannot drift apart silently: an
//! end-to-end test asserts every name in a real run's
//! [`metrics_snapshot`](crate::metrics_snapshot) matches a catalog entry.
//! When adding a metric, add it here (and to the docs) in the same
//! change — the test fails otherwise.
//!
//! Matching rules: an inline label suffix (`{engine=sat}`) is stripped
//! first, then the name is compared segment-wise against the pattern
//! (segments split on `.`); a `*` pattern segment matches exactly one
//! name segment, which is how dynamic families like
//! `bmc.unroll.<steps>.solve_ns` are covered.

/// Metric kind, for catalog bookkeeping and doc generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// One catalog entry: a kind and a dot-separated name pattern (`*`
/// matches one segment).
pub type CatalogEntry = (MetricKind, &'static str);

use MetricKind::{Counter, Gauge, Histogram};

/// Every metric name the workspace emits.
pub const METRIC_CATALOG: &[CatalogEntry] = &[
    // rsn-sat: CDCL solver statistics, per-call histograms.
    (Counter, "sat.solves"),
    (Counter, "sat.conflicts"),
    (Counter, "sat.decisions"),
    (Counter, "sat.propagations"),
    (Counter, "sat.restarts"),
    (Counter, "sat.sat"),
    (Counter, "sat.unsat"),
    (Counter, "sat.unknown"),
    (Counter, "sat.pool_imports"),
    (Counter, "sat.pool_exports"),
    (Counter, "sat.cubes"),
    (Counter, "sat.probe_units"),
    (Counter, "sat.eliminated_vars"),
    (Counter, "sat.portfolio_winner"),
    (Gauge, "sat.parallel_speedup"),
    (Histogram, "sat.solve_ns"),
    (Histogram, "sat.solve_conflicts"),
    (Histogram, "sat.learnt_lbd"),
    // rsn-ilp: branch & bound and simplex.
    (Counter, "ilp.solves"),
    (Counter, "ilp.nodes"),
    (Counter, "ilp.unproven"),
    (Counter, "ilp.cut_rounds"),
    (Counter, "ilp.cuts_added"),
    (Counter, "ilp.lp_solves"),
    (Counter, "ilp.simplex_iters"),
    (Counter, "ilp.bland_iters"),
    (Histogram, "ilp.solve_ns"),
    (Histogram, "ilp.node_ns"),
    // rsn-bmc: bounded model checking, keyed by unroll depth.
    (Counter, "bmc.builds"),
    (Counter, "bmc.queries"),
    (Counter, "bmc.unknown"),
    (Counter, "bmc.unroll.*.solve_ns"),
    (Gauge, "bmc.unroll.*.vars"),
    (Gauge, "bmc.unroll.*.clauses"),
    (Histogram, "bmc.query_ns"),
    // rsn-bmc: fault-distinguishability miter.
    (Counter, "bmc.miter.builds"),
    (Counter, "bmc.miter.queries"),
    (Counter, "bmc.miter.unknown"),
    (Gauge, "bmc.miter.vars"),
    (Gauge, "bmc.miter.clauses"),
    (Histogram, "bmc.miter.query_ns"),
    // rsn-fault: access engine, collapsing, work-stealing sweep.
    (Counter, "fault.engine_rounds"),
    (Counter, "fault.faults_simulated"),
    (Counter, "fault.classes_evaluated"),
    (Counter, "fault.quarantined"),
    (Counter, "fault.skipped"),
    (Counter, "fault.steal_batches"),
    (Gauge, "fault.collapse_ratio"),
    (Gauge, "fault.faults_per_sec"),
    (Gauge, "fault.worker_utilization"),
    (Histogram, "fault.class_eval_ns"),
    (Histogram, "fault.warm_rounds"),
    // rsn-synth: pipeline phases and augmentation results.
    (Counter, "synth.runs"),
    (Counter, "synth.added_edges"),
    (Counter, "synth.added_muxes"),
    (Counter, "synth.added_bits"),
    (Counter, "synth.ilp_runs"),
    (Counter, "synth.greedy_runs"),
    (Counter, "synth.hardened_muxes"),
    (Gauge, "synth.phases.dataflow_ms"),
    (Gauge, "synth.phases.augment_ms"),
    (Gauge, "synth.phases.build_ms"),
    (Gauge, "synth.phases.harden_ms"),
    (Gauge, "synth.phases.select_ms"),
    (Gauge, "synth.phases.verify_ms"),
    // rsn-verify: static lint + SAT checks.
    (Counter, "lint.runs"),
    (Counter, "lint.errors"),
    (Counter, "lint.warnings"),
    (Counter, "lint.sat_queries"),
    (Counter, "lint.incomplete"),
    (Gauge, "lint.verify_ms"),
    (Histogram, "verify.core_size"),
    (Histogram, "verify.explain_ns"),
    (Histogram, "verify.cone_nodes"),
    // rsn-budget: exhaustion and per-engine attribution (inline labels).
    (Counter, "budget.exhausted"),
    (Counter, "budget.degraded_fallbacks"),
    (Counter, "budget.spent"),
    // rsn-serve: resident daemon (labels carry the endpoint, e.g.
    // `serve.requests{endpoint=sweep}`).
    (Counter, "serve.requests"),
    (Counter, "serve.responses"),
    (Counter, "serve.errors"),
    (Counter, "serve.rejected"),
    (Counter, "serve.cancelled"),
    (Counter, "serve.cache_hits"),
    (Counter, "serve.cache_misses"),
    (Counter, "serve.panics_caught"),
    (Counter, "serve.worker_respawns"),
    (Counter, "serve.breaker_open"),
    (Counter, "serve.breaker_fast_fail"),
    (Counter, "serve.cache_poisoned"),
    (Gauge, "serve.queue_depth"),
    (Gauge, "serve.cache_networks"),
    (Histogram, "serve.request_ns"),
    // rsn-fail: chaos injection (label carries the point, e.g.
    // `fail.injected{point=sat.solve}`).
    (Counter, "fail.injected"),
    // crates/bench: cross-checks and throughput.
    (Counter, "bench.bmc_checked"),
    (Counter, "bench.bmc_mismatches"),
    (Gauge, "bench.access_sib_faults_per_sec"),
    (Gauge, "bench.access_ft_faults_per_sec"),
];

/// Strips an inline label suffix: `budget.spent{engine=sat}` →
/// `budget.spent`.
pub fn strip_labels(name: &str) -> &str {
    match name.find('{') {
        Some(open) => &name[..open],
        None => name,
    }
}

fn pattern_matches(pattern: &str, name: &str) -> bool {
    let mut p = pattern.split('.');
    let mut n = name.split('.');
    loop {
        match (p.next(), n.next()) {
            (None, None) => return true,
            (Some(ps), Some(ns)) => {
                if ps != "*" && ps != ns {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

/// `true` if `name` (labels stripped) matches a catalog entry of any
/// kind.
pub fn catalog_matches(name: &str) -> bool {
    catalog_lookup(name).is_some()
}

/// The kind of the catalog entry matching `name`, if any.
pub fn catalog_lookup(name: &str) -> Option<MetricKind> {
    let base = strip_labels(name);
    METRIC_CATALOG
        .iter()
        .find(|(_, pat)| pattern_matches(pat, base))
        .map(|(kind, _)| *kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_wildcard_matching() {
        assert_eq!(catalog_lookup("sat.solves"), Some(MetricKind::Counter));
        assert_eq!(
            catalog_lookup("bmc.unroll.3.solve_ns"),
            Some(MetricKind::Counter)
        );
        assert_eq!(
            catalog_lookup("bmc.unroll.12.vars"),
            Some(MetricKind::Gauge)
        );
        assert_eq!(catalog_lookup("sat.solve_ns"), Some(MetricKind::Histogram));
        assert!(!catalog_matches("bmc.unroll.3.extra.solve_ns"));
        assert!(!catalog_matches("bmc.unroll.solve_ns"));
        assert!(!catalog_matches("made.up.metric"));
    }

    #[test]
    fn labels_are_stripped_before_matching() {
        assert_eq!(strip_labels("budget.spent{engine=sat}"), "budget.spent");
        assert!(catalog_matches("budget.spent{engine=sat}"));
        assert!(catalog_matches("budget.spent{engine=fault}"));
        assert!(!catalog_matches("budget.unknown{engine=sat}"));
    }

    #[test]
    fn catalog_patterns_are_well_formed() {
        for (_, pat) in METRIC_CATALOG {
            assert!(!pat.is_empty());
            assert!(!pat.contains('{'), "patterns carry no labels: {pat}");
            assert!(
                pat.split('.').all(|s| !s.is_empty()),
                "empty segment in {pat}"
            );
        }
    }
}
