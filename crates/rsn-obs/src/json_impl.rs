//! Minimal JSON model: a value type, a writer and a recursive-descent
//! parser. Enough for [`RunReport`](crate::RunReport) serialization and
//! for tests to read reports back; deliberately not a general-purpose
//! JSON library (no `\u` surrogate pairs in the writer, numbers are
//! `f64`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order is not required for
/// reports, so a `BTreeMap` keeps output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts into an object; panics on non-objects (construction bug).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Looks up a key in an object, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walks a `/`-separated path of object keys.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for part in path.split('/') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes with `indent` spaces per nesting level.
    pub fn to_string_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Compact (no-whitespace) JSON serialization; `to_string()` comes for
/// free via `ToString`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Containers may nest at most this deep. The parser is recursive
/// descent, so without a cap adversarial input (`[[[[…`) converts
/// directly into stack exhaustion — a process abort, not a catchable
/// error. 128 levels is far beyond any report this workspace writes.
pub const MAX_DEPTH: usize = 128;

/// A parse failure: where, and why. `TooDeep` is its own variant so
/// callers (and tests) can tell resource-limit rejection apart from
/// malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Container nesting exceeded [`MAX_DEPTH`] at this byte offset.
    TooDeep { offset: usize },
    /// Malformed input: byte offset and description.
    Syntax { offset: usize, message: String },
}

impl JsonError {
    fn syntax(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset of the failure.
    pub fn offset(&self) -> usize {
        match self {
            JsonError::TooDeep { offset } => *offset,
            JsonError::Syntax { offset, .. } => *offset,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::TooDeep { offset } => {
                write!(f, "nesting deeper than {MAX_DEPTH} at byte {offset}")
            }
            JsonError::Syntax { offset, message } => write!(f, "{message} at byte {offset}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document. Returns a typed [`JsonError`] (with a byte
/// offset) on malformed input, trailing garbage, or nesting beyond
/// [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::syntax(pos, "trailing data"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::syntax(*pos, format!("expected '{}'", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonError::syntax(*pos, "unexpected end of input")),
        Some(b'{') => {
            if depth >= MAX_DEPTH {
                return Err(JsonError::TooDeep { offset: *pos });
            }
            parse_object(b, pos, depth + 1)
        }
        Some(b'[') => {
            if depth >= MAX_DEPTH {
                return Err(JsonError::TooDeep { offset: *pos });
            }
            parse_array(b, pos, depth + 1)
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::syntax(*pos, "bad literal"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| JsonError::syntax(start, "bad number"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(JsonError::syntax(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| JsonError::syntax(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::syntax(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| JsonError::syntax(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::syntax(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos, depth)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(JsonError::syntax(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deep_arrays_are_rejected_not_overflowed() {
        // Far deeper than any thread's stack could recurse through.
        let deep = "[".repeat(200_000);
        match parse(&deep) {
            Err(JsonError::TooDeep { offset }) => assert_eq!(offset, MAX_DEPTH),
            other => panic!("expected TooDeep, got {other:?}"),
        }
    }

    #[test]
    fn deep_objects_are_rejected_not_overflowed() {
        let deep = "{\"a\":".repeat(200_000);
        match parse(&deep) {
            Err(JsonError::TooDeep { .. }) => {}
            other => panic!("expected TooDeep, got {other:?}"),
        }
    }

    #[test]
    fn mixed_nesting_just_under_the_cap_parses() {
        // MAX_DEPTH alternating containers: legal, and round-trips.
        let mut doc = String::new();
        for i in 0..MAX_DEPTH {
            doc.push_str(if i % 2 == 0 { "[" } else { "{\"k\":" });
        }
        doc.push_str("null");
        for i in (0..MAX_DEPTH).rev() {
            doc.push_str(if i % 2 == 0 { "]" } else { "}" });
        }
        let v = parse(&doc).expect("depth == MAX_DEPTH parses");
        let back = parse(&v.to_string()).expect("round trip");
        assert_eq!(v, back);
        // One deeper is rejected.
        let over = format!("[{doc}]");
        assert!(matches!(parse(&over), Err(JsonError::TooDeep { .. })));
    }

    #[test]
    fn error_offsets_and_display() {
        let e = parse("[1, x]").unwrap_err();
        assert!(matches!(e, JsonError::Syntax { .. }));
        assert!(e.to_string().contains("byte"));
        assert!(e.offset() > 0);
    }
}
