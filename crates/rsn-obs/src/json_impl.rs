//! Minimal JSON model: a value type, a writer and a recursive-descent
//! parser. Enough for [`RunReport`](crate::RunReport) serialization and
//! for tests to read reports back; deliberately not a general-purpose
//! JSON library (no `\u` surrogate pairs in the writer, numbers are
//! `f64`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order is not required for
/// reports, so a `BTreeMap` keeps output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts into an object; panics on non-objects (construction bug).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Looks up a key in an object, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walks a `/`-separated path of object keys.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for part in path.split('/') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes with `indent` spaces per nesting level.
    pub fn to_string_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Compact (no-whitespace) JSON serialization; `to_string()` comes for
/// free via `ToString`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns `Err` with a byte offset and message
/// on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}
