//! Observability for the FT-RSN toolchain.
//!
//! This crate carries no dependencies and provides the pieces the rest
//! of the workspace threads through its pipeline:
//!
//! * **Spans** ([`Span`], [`timed`]) — hierarchical wall-clock timers.
//!   Entering a span pushes onto a thread-local stack, so nested phases
//!   aggregate under slash-joined paths (`synthesize/augment/ilp`), each
//!   with a call count and total duration.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`hist_record`],
//!   [`Registry`]) — a process-global registry of named `u64` counters,
//!   `f64` gauges and log2-bucketed [`Histogram`]s. Counters accumulate,
//!   gauges overwrite, histograms merge bucket-wise; snapshots are cheap
//!   and registries merge for map-reduce style parallel collection.
//!   Names may embed labels as `base{key=value}` (see [`METRIC_CATALOG`]
//!   for the full inventory).
//! * **Event tracing** ([`TraceGuard`], [`trace_instant`],
//!   [`trace_drain`], [`chrome_trace`]) — opt-in per-thread ring buffers
//!   of timestamped begin/end/instant events, exportable as Chrome /
//!   Perfetto trace JSON. Disabled it costs one relaxed atomic load per
//!   site; enable with `RSN_TRACE=1` or [`set_trace_enabled`]. Spans
//!   emit trace events automatically while enabled.
//! * **Budget trips** ([`record_budget_trip`], [`budget_trips`]) — a
//!   bounded table of first budget exhaustions with the engine, reason
//!   and live span path, so reports show *where* deadlines ran out.
//! * **Logging** ([`error!`], [`warn!`], [`info!`], [`debug!`],
//!   [`trace!`]) — an env-controlled facade. Nothing is printed unless
//!   `RSN_LOG` selects a level, so library crates stay silent by
//!   default.
//! * **Reports** ([`RunReport`]) — a serializable snapshot of all of the
//!   above, written as JSON by a hand-rolled writer (no serde). A small
//!   parser ([`json`]) ships for tests and downstream tooling, and
//!   [`render_prometheus`] renders registry snapshots in the Prometheus
//!   text exposition format.
//!
//! Global state is deliberate: instrumentation crosses crate boundaries
//! and threading a context handle through every solver call would
//! dominate the diff.
//!
//! # Reset contract
//!
//! [`reset`] clears **all** run-scoped global state: span aggregates,
//! counters, gauges, histograms, buffered trace events (drained and
//! discarded) and recorded budget trips. Benchmark drivers call it
//! between rows so no events, samples or trips leak across rows; a
//! driver that wants the events must [`trace_drain`] *before* resetting.
//! Two things deliberately survive a reset because they are process
//! properties, not run properties: the trace timestamp epoch (so
//! timestamps stay monotone across rows accumulated into one trace
//! file) and assigned thread ids.

mod catalog;
mod hist;
pub mod json_impl;
mod log;
mod metrics;
mod prom;
mod report;
mod scope;
mod span;
mod trace;
mod trip;

pub use catalog::{
    catalog_lookup, catalog_matches, strip_labels, CatalogEntry, MetricKind, METRIC_CATALOG,
};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, HIST_BUCKETS};
pub use json_impl as json;
pub use log::{log_enabled, log_level, log_message, set_log_level, Level};
pub use metrics::{
    counter_add, counter_get, gauge_set, hist_merge, hist_record, metrics_snapshot, Registry,
};
pub use prom::render_prometheus;
pub use report::RunReport;
pub use scope::{scope_active, scope_handles, scope_merge, ScopeGuard, ScopeHandle};
pub use span::{span_snapshot, timed, Span, SpanStat};
pub use trace::{
    chrome_trace, set_trace_enabled, trace_drain, trace_enabled, trace_instant, TraceEvent,
    TraceEventKind, TraceGuard, TraceThread, DEFAULT_TRACE_CAP,
};
pub use trip::{budget_trips, record_budget_trip, BudgetTrip, MAX_BUDGET_TRIPS};

/// Clears all run-scoped observability state: span aggregates, counters,
/// gauges, histograms, buffered trace events and budget trips. Call
/// between independent runs (e.g. benchmark rows) so each report
/// reflects exactly one run. See the crate docs ("Reset contract") for
/// what survives.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
    trace::reset_trace();
    trip::reset_trips();
}
