//! Observability for the FT-RSN toolchain.
//!
//! This crate carries no dependencies and provides four pieces the rest
//! of the workspace threads through its pipeline:
//!
//! * **Spans** ([`Span`], [`timed`]) — hierarchical wall-clock timers.
//!   Entering a span pushes onto a thread-local stack, so nested phases
//!   aggregate under slash-joined paths (`synthesize/augment/ilp`), each
//!   with a call count and total duration.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`Registry`]) — a
//!   process-global registry of named `u64` counters and `f64` gauges.
//!   Counters accumulate, gauges overwrite; snapshots are cheap and
//!   registries merge for map-reduce style parallel collection.
//! * **Logging** ([`error!`], [`warn!`], [`info!`], [`debug!`],
//!   [`trace!`]) — an env-controlled facade. Nothing is printed unless
//!   `RSN_LOG` selects a level, so library crates stay silent by
//!   default.
//! * **Reports** ([`RunReport`]) — a serializable snapshot of all of the
//!   above, written as JSON by a hand-rolled writer (no serde). A small
//!   parser ([`json`]) ships for tests and downstream tooling.
//!
//! Global state is deliberate: instrumentation crosses crate boundaries
//! and threading a context handle through every solver call would
//! dominate the diff. [`reset`] clears everything between benchmark
//! rows.

pub mod json_impl;
mod log;
mod metrics;
mod report;
mod span;

pub use json_impl as json;
pub use log::{log_enabled, log_level, log_message, set_log_level, Level};
pub use metrics::{counter_add, counter_get, gauge_set, metrics_snapshot, Registry};
pub use report::RunReport;
pub use span::{span_snapshot, timed, Span, SpanStat};

/// Clears all global observability state: span aggregates, counters and
/// gauges. Call between independent runs (e.g. benchmark rows) so each
/// report reflects exactly one run.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
}
