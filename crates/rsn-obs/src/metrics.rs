//! Typed named metrics: monotonically increasing `u64` counters,
//! last-write-wins `f64` gauges and log2-bucketed [`Histogram`]s, held in
//! a process-global registry.
//!
//! Names may carry inline labels in the workspace convention
//! `base.name{key=value}` (e.g. `budget.spent{engine=sat}`); the registry
//! treats the whole string as the key, and the Prometheus renderer
//! ([`crate::render_prometheus`]) rewrites the suffix to label syntax.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::hist::Histogram;

/// A snapshot (or free-standing accumulator) of named metrics. Counters
/// add on merge; gauges overwrite; histograms merge bucket-wise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the named histogram, creating it empty
    /// first.
    pub fn hist_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Folds `other` into `self`: counters accumulate, gauges take the
    /// incoming value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

// Compile-time guarantee: registries move between threads (map-reduce
// collection, per-request scopes) — a future non-Send field fails here.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Registry>()
};

static GLOBAL: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

/// Adds `delta` to a counter in the global registry (and any report
/// scopes entered on this thread — see [`crate::ScopeHandle`]).
pub fn counter_add(name: &str, delta: u64) {
    GLOBAL.lock().unwrap().counter_add(name, delta);
    crate::scope::tee_counter(name, delta);
}

/// Current value of a global counter (0 if never touched).
pub fn counter_get(name: &str) -> u64 {
    GLOBAL
        .lock()
        .unwrap()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Sets a gauge in the global registry (and any entered scopes).
pub fn gauge_set(name: &str, value: f64) {
    GLOBAL.lock().unwrap().gauge_set(name, value);
    crate::scope::tee_gauge(name, value);
}

/// Records one sample into a histogram in the global registry (and any
/// entered scopes).
pub fn hist_record(name: &str, value: u64) {
    GLOBAL.lock().unwrap().hist_record(name, value);
    crate::scope::tee_hist(name, value);
}

/// Merges a whole pre-accumulated [`Histogram`] into a histogram in the
/// global registry (and any entered scopes). Lets hot loops — e.g. the
/// per-conflict LBD samples of a SAT solve — record into a local
/// histogram and pay the global lock once per solve instead of once per
/// sample.
pub fn hist_merge(name: &str, h: &Histogram) {
    if h.is_empty() {
        return;
    }
    GLOBAL
        .lock()
        .unwrap()
        .histograms
        .entry(name.to_string())
        .or_default()
        .merge(h);
    crate::scope::tee_hist_merge(name, h);
}

/// Clones the global registry.
pub fn metrics_snapshot() -> Registry {
    GLOBAL.lock().unwrap().clone()
}

pub(crate) fn reset_metrics() {
    let mut g = GLOBAL.lock().unwrap();
    g.counters.clear();
    g.gauges.clear();
    g.histograms.clear();
}
