//! Per-request report scopes.
//!
//! The global registry aggregates everything the process has done, which
//! is the right default for batch drivers but bleeds metrics across
//! concurrent requests in a resident service. A [`ScopeHandle`] is a
//! free-standing [`Registry`] that, while *entered* on a thread (via
//! [`ScopeGuard`]), receives a copy of every counter/gauge/histogram
//! write that thread makes. The global registry still sees every write —
//! scopes tee, they do not redirect — so process-wide views
//! (`/metrics`, drift tests, benchmark reports) are unaffected.
//!
//! Scopes are thread-local by design: two requests on different threads
//! each see only their own writes. Code that fans work out to helper
//! threads (the rsn-fault sweep scheduler) captures the spawning
//! thread's stack with [`scope_handles`] and re-enters it on each worker
//! so per-request attribution survives parallelism.

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

use crate::metrics::Registry;

/// A shared, thread-safe per-request metric sink. Cloning the handle
/// shares the underlying registry; writes tee into it from any thread
/// where the handle is entered.
#[derive(Debug, Clone, Default)]
pub struct ScopeHandle {
    inner: Arc<Mutex<Registry>>,
}

impl ScopeHandle {
    pub fn new() -> ScopeHandle {
        ScopeHandle::default()
    }

    /// Installs this scope on the current thread until the guard drops.
    pub fn enter(&self) -> ScopeGuard {
        STACK.with(|s| s.borrow_mut().push(self.clone()));
        ScopeGuard { _priv: () }
    }

    /// Clones the metrics accumulated in this scope so far.
    pub fn snapshot(&self) -> Registry {
        self.inner.lock().unwrap().clone()
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.inner.lock().unwrap().counter_add(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.inner.lock().unwrap().gauge_set(name, value);
    }

    fn hist_record(&self, name: &str, value: u64) {
        self.inner.lock().unwrap().hist_record(name, value);
    }
}

/// RAII guard returned by [`ScopeHandle::enter`]; pops the scope from
/// the current thread's stack on drop.
#[must_use = "the scope is active only while the guard lives"]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

thread_local! {
    static STACK: RefCell<Vec<ScopeHandle>> = const { RefCell::new(Vec::new()) };
}

/// The scopes currently entered on this thread, outermost first. Pass
/// the result to worker threads and [`ScopeHandle::enter`] each handle
/// there so the workers' metric writes stay attributed to the request
/// that spawned them.
pub fn scope_handles() -> Vec<ScopeHandle> {
    STACK.with(|s| s.borrow().clone())
}

/// True if at least one scope is entered on this thread. Lets hot paths
/// skip snapshot/merge work that only exists to feed scopes.
pub fn scope_active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

pub(crate) fn tee_counter(name: &str, delta: u64) {
    STACK.with(|s| {
        for h in s.borrow().iter() {
            h.counter_add(name, delta);
        }
    });
}

pub(crate) fn tee_gauge(name: &str, value: f64) {
    STACK.with(|s| {
        for h in s.borrow().iter() {
            h.gauge_set(name, value);
        }
    });
}

pub(crate) fn tee_hist(name: &str, value: u64) {
    STACK.with(|s| {
        for h in s.borrow().iter() {
            h.hist_record(name, value);
        }
    });
}

pub(crate) fn tee_hist_merge(name: &str, hist: &crate::hist::Histogram) {
    STACK.with(|s| {
        for h in s.borrow().iter() {
            h.inner
                .lock()
                .unwrap()
                .histograms
                .entry(name.to_string())
                .or_default()
                .merge(hist);
        }
    });
}

/// Merges a whole registry into every scope on this thread (used by
/// map-reduce collectors that fold worker-local registries).
pub fn scope_merge(other: &Registry) {
    STACK.with(|s| {
        for h in s.borrow().iter() {
            let mut g = h.inner.lock().unwrap();
            g.merge(other);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tees_and_isolates() {
        let a = ScopeHandle::new();
        let b = ScopeHandle::new();
        {
            let _g = a.enter();
            crate::counter_add("scope.test.a", 2);
        }
        {
            let _g = b.enter();
            crate::counter_add("scope.test.b", 3);
        }
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa.counters.get("scope.test.a"), Some(&2));
        assert_eq!(sa.counters.get("scope.test.b"), None);
        assert_eq!(sb.counters.get("scope.test.b"), Some(&3));
        assert_eq!(sb.counters.get("scope.test.a"), None);
        // The global registry saw both.
        assert!(crate::counter_get("scope.test.a") >= 2);
        assert!(crate::counter_get("scope.test.b") >= 3);
    }

    #[test]
    fn nested_scopes_both_receive() {
        let outer = ScopeHandle::new();
        let inner = ScopeHandle::new();
        {
            let _o = outer.enter();
            {
                let _i = inner.enter();
                crate::counter_add("scope.test.nested", 1);
                crate::gauge_set("scope.test.gauge", 7.5);
                crate::hist_record("scope.test.hist", 9);
            }
            crate::counter_add("scope.test.nested", 1);
        }
        assert_eq!(outer.snapshot().counters.get("scope.test.nested"), Some(&2));
        assert_eq!(inner.snapshot().counters.get("scope.test.nested"), Some(&1));
        assert_eq!(inner.snapshot().gauges.get("scope.test.gauge"), Some(&7.5));
        assert_eq!(inner.snapshot().histograms["scope.test.hist"].count, 1);
    }

    #[test]
    fn handles_cross_threads() {
        let scope = ScopeHandle::new();
        let handles = {
            let _g = scope.enter();
            scope_handles()
        };
        assert_eq!(handles.len(), 1);
        let moved = handles;
        std::thread::spawn(move || {
            let guards: Vec<_> = moved.iter().map(|h| h.enter()).collect();
            crate::counter_add("scope.test.worker", 5);
            drop(guards);
        })
        .join()
        .unwrap();
        assert_eq!(scope.snapshot().counters.get("scope.test.worker"), Some(&5));
    }
}
