//! Prometheus exposition-format renderer for [`Registry`] snapshots —
//! the ready-made body for a future `rsn-serve` `/metrics` endpoint.
//!
//! Metric names are mapped to the Prometheus grammar: the `rsn_` prefix
//! is prepended, dots (and any other illegal characters) become
//! underscores, and the workspace's inline label convention
//! (`budget.spent{engine=sat}`) is rewritten to proper label syntax
//! (`rsn_budget_spent{engine="sat"}`). Counters render as `counter`,
//! gauges as `gauge`, and log2 histograms as native `histogram` families
//! with cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
//! Output is deterministic: families sort by the registry's BTreeMap
//! order.

use std::fmt::Write as _;

use crate::hist::{bucket_upper_bound, Histogram, HIST_BUCKETS};
use crate::metrics::Registry;

/// Splits an internal metric name into (base, rendered label body).
/// `budget.spent{engine=sat}` → `("budget.spent", "engine=\"sat\"")`;
/// names without labels return an empty label body.
fn split_labels(name: &str) -> (&str, String) {
    let Some(open) = name.find('{') else {
        return (name, String::new());
    };
    let base = &name[..open];
    let body = name[open + 1..].trim_end_matches('}');
    let rendered = body
        .split(',')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => format!("{}=\"{}\"", k.trim(), v.trim()),
            None => format!("{}=\"\"", kv.trim()),
        })
        .collect::<Vec<_>>()
        .join(",");
    (base, rendered)
}

/// Maps an internal base name onto the Prometheus name grammar.
fn sanitize(base: &str) -> String {
    let mut out = String::with_capacity(base.len() + 4);
    out.push_str("rsn_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn type_line(out: &mut String, name: &str, kind: &str, last_typed: &mut String) {
    if last_typed != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last_typed.clear();
        last_typed.push_str(name);
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn hist_family(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let le_label = |le: String| {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{{{labels},le=\"{le}\"}}")
        }
    };
    // Cumulative bucket series over the populated range; buckets past the
    // largest observed value add nothing `+Inf` doesn't already say.
    let mut cum = 0u64;
    let last = (0..HIST_BUCKETS).rev().find(|&i| h.buckets[i] > 0);
    if let Some(last) = last {
        for i in 0..=last {
            cum += h.buckets[i];
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}",
                le_label(bucket_upper_bound(i).to_string())
            );
        }
    }
    let _ = writeln!(out, "{name}_bucket{} {}", le_label("+Inf".into()), h.count);
    let plain = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4). See the module docs for the name mapping.
pub fn render_prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();
    for (name, value) in &reg.counters {
        let (base, labels) = split_labels(name);
        let prom = sanitize(base);
        type_line(&mut out, &prom, "counter", &mut last_typed);
        if labels.is_empty() {
            let _ = writeln!(out, "{prom} {value}");
        } else {
            let _ = writeln!(out, "{prom}{{{labels}}} {value}");
        }
    }
    for (name, value) in &reg.gauges {
        let (base, labels) = split_labels(name);
        let prom = sanitize(base);
        type_line(&mut out, &prom, "gauge", &mut last_typed);
        if labels.is_empty() {
            let _ = write!(out, "{prom} ");
        } else {
            let _ = write!(out, "{prom}{{{labels}}} ");
        }
        write_f64(&mut out, *value);
        out.push('\n');
    }
    for (name, h) in &reg.histograms {
        let (base, labels) = split_labels(name);
        let prom = sanitize(base);
        type_line(&mut out, &prom, "histogram", &mut last_typed);
        hist_family(&mut out, &prom, &labels, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_inline_labels() {
        assert_eq!(split_labels("sat.solves"), ("sat.solves", String::new()));
        let (base, labels) = split_labels("budget.spent{engine=sat}");
        assert_eq!(base, "budget.spent");
        assert_eq!(labels, "engine=\"sat\"");
        let (_, multi) = split_labels("x{a=1,b=two}");
        assert_eq!(multi, "a=\"1\",b=\"two\"");
    }

    #[test]
    fn renders_all_three_kinds() {
        let mut reg = Registry::new();
        reg.counter_add("sat.solves", 3);
        reg.counter_add("budget.spent{engine=sat}", 41);
        reg.gauge_set("fault.collapse_ratio", 0.5);
        reg.hist_record("sat.solve_ns", 1000);
        reg.hist_record("sat.solve_ns", 3000);
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE rsn_sat_solves counter\nrsn_sat_solves 3\n"));
        assert!(text.contains("rsn_budget_spent{engine=\"sat\"} 41\n"));
        assert!(
            text.contains("# TYPE rsn_fault_collapse_ratio gauge\nrsn_fault_collapse_ratio 0.5\n")
        );
        assert!(text.contains("# TYPE rsn_sat_solve_ns histogram\n"));
        assert!(text.contains("rsn_sat_solve_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("rsn_sat_solve_ns_sum 4000\n"));
        assert!(text.contains("rsn_sat_solve_ns_count 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = Registry::new();
        reg.hist_record("h", 1); // bucket 0, le=1
        reg.hist_record("h", 2); // bucket 1, le=3
        reg.hist_record("h", 2);
        let text = render_prometheus(&reg);
        assert!(text.contains("rsn_h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("rsn_h_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("rsn_h_bucket{le=\"+Inf\"} 3\n"));
    }
}
