//! First-trip budget backtraces: when an engine's budget trips (deadline,
//! work limit or cancellation), the engine records *where* — which span
//! path was live — so a [`RunReport`](crate::RunReport) can say not just
//! that a run degraded but in which phase the budget actually ran out.
//!
//! Recording is engine-initiated (the budget crate stays observability
//! free): each engine calls [`record_budget_trip`] at the point it
//! observes exhaustion. The table is bounded to [`MAX_BUDGET_TRIPS`]
//! entries per run — the first trips are the interesting ones; later
//! repeats only increment the dropped count implicit in `budget.exhausted`
//! counters.

use std::sync::Mutex;
use std::time::Instant;

use crate::span::current_path;
use crate::trace::trace_instant;

/// Maximum trips retained per run (between [`crate::reset`] calls).
pub const MAX_BUDGET_TRIPS: usize = 32;

/// One recorded budget trip.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetTrip {
    /// Engine that observed the trip (`"sat"`, `"ilp"`, `"fault"`, ...).
    pub engine: &'static str,
    /// The budget's latched reason (`"deadline"`, `"work_limit"`,
    /// `"cancelled"`).
    pub reason: String,
    /// Slash-joined span path live on the recording thread, empty when
    /// the trip happened outside any span.
    pub span_path: String,
    /// Milliseconds since the run began — the last [`crate::reset`], or
    /// the first trip of the process if reset was never called.
    pub at_ms: f64,
}

static TRIPS: Mutex<Vec<BudgetTrip>> = Mutex::new(Vec::new());
static RUN_START: Mutex<Option<Instant>> = Mutex::new(None);

fn run_elapsed_ms() -> f64 {
    let mut start = RUN_START.lock().unwrap();
    start
        .get_or_insert_with(Instant::now)
        .elapsed()
        .as_secs_f64()
        * 1e3
}

/// Records that `engine` observed its budget trip for reason `reason`,
/// capturing the calling thread's live span path and a run-relative
/// timestamp. Beyond [`MAX_BUDGET_TRIPS`] entries the call is a cheap
/// no-op; a `budget_trip` trace instant is still emitted while tracing.
pub fn record_budget_trip(engine: &'static str, reason: &str) {
    trace_instant("budget_trip");
    let mut trips = TRIPS.lock().unwrap();
    if trips.len() >= MAX_BUDGET_TRIPS {
        return;
    }
    let at_ms = run_elapsed_ms();
    trips.push(BudgetTrip {
        engine,
        reason: reason.to_string(),
        span_path: current_path(),
        at_ms,
    });
}

/// Clones all trips recorded since the last [`crate::reset`], in
/// recording order.
pub fn budget_trips() -> Vec<BudgetTrip> {
    TRIPS.lock().unwrap().clone()
}

pub(crate) fn reset_trips() {
    TRIPS.lock().unwrap().clear();
    // A reset delimits a run, so trip timestamps are row-relative in
    // drivers that reset between rows.
    *RUN_START.lock().unwrap() = Some(Instant::now());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_caps() {
        reset_trips();
        for _ in 0..(MAX_BUDGET_TRIPS + 5) {
            record_budget_trip("sat", "deadline");
        }
        let trips = budget_trips();
        assert_eq!(trips.len(), MAX_BUDGET_TRIPS);
        assert_eq!(trips[0].engine, "sat");
        assert_eq!(trips[0].reason, "deadline");
        reset_trips();
        assert!(budget_trips().is_empty());
    }

    #[test]
    fn captures_live_span_path() {
        reset_trips();
        {
            let _outer = crate::Span::enter("trip_outer");
            let _inner = _outer.child("trip_inner");
            record_budget_trip("ilp", "work_limit");
        }
        let trips = budget_trips();
        let t = trips.last().expect("one trip");
        assert_eq!(t.span_path, "trip_outer/trip_inner");
        assert!(t.at_ms >= 0.0);
        reset_trips();
    }
}
