//! Env-controlled logging facade.
//!
//! Library crates log through the [`error!`](crate::error!) …
//! [`trace!`](crate::trace!) macros; nothing reaches stderr unless the
//! `RSN_LOG` environment variable selects a level (`error`, `warn`,
//! `info`, `debug`, `trace`; `off`/unset silences everything). The level
//! is read once, lazily, and can be overridden programmatically with
//! [`set_log_level`] (useful in tests).

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Off = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn parse_level(s: &str) -> Level {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" | "e" | "1" => Level::Error,
        "warn" | "warning" | "w" | "2" => Level::Warn,
        "info" | "i" | "3" => Level::Info,
        "debug" | "d" | "4" => Level::Debug,
        "trace" | "t" | "5" => Level::Trace,
        _ => Level::Off,
    }
}

fn load_level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != UNINIT {
        return Level::from_u8(raw);
    }
    let level = std::env::var("RSN_LOG").map_or(Level::Off, |v| parse_level(&v));
    LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// The active log level.
pub fn log_level() -> Level {
    load_level()
}

/// `true` when a message at `level` would be emitted. The log macros
/// check this before formatting, so disabled logging costs one atomic
/// load.
pub fn log_enabled(level: Level) -> bool {
    level <= load_level() && level != Level::Off
}

/// Overrides the level (wins over `RSN_LOG`).
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Emits one formatted line to stderr. Called by the log macros after a
/// [`log_enabled`] check; prefer the macros at call sites.
pub fn log_message(level: Level, target: &str, args: fmt::Arguments<'_>) {
    eprintln!("[rsn {:5} {}] {}", level.label(), target, args);
}

/// Logs at error level (`RSN_LOG=error` or lower).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Error) {
            $crate::log_message($crate::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at warn level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::log_message($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at info level.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log_message($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at debug level.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log_message($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at trace level.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Trace) {
            $crate::log_message($crate::Level::Trace, module_path!(), format_args!($($arg)*));
        }
    };
}
