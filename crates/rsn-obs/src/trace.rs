//! Opt-in event tracing: timestamped span begin/end and instant events in
//! lock-light per-thread ring buffers, exportable as Chrome
//! `chrome://tracing` / Perfetto JSON.
//!
//! Tracing is disabled by default; every emission site costs exactly one
//! relaxed atomic load until [`set_trace_enabled`] (or the `RSN_TRACE`
//! environment variable: `1`/`true`/`on`) switches it on. When enabled,
//! each thread appends to its own fixed-capacity buffer behind its own
//! (uncontended) mutex, so workers never serialize against each other on
//! the hot path. Buffers are **bounded**: once a thread's buffer is full,
//! new events are dropped (never the recorded prefix — span begin/end
//! pairing of the retained prefix stays intact) and counted in
//! [`TraceThread::dropped`]. Capacity is [`DEFAULT_TRACE_CAP`] events per
//! thread, overridable once at first use via `RSN_TRACE_CAP`.
//!
//! Timestamps are nanoseconds since a process-global epoch (first trace
//! use), monotone per thread. Thread ids are small sequential integers
//! assigned at a thread's first event — in a work-stealing sweep every
//! worker gets its own id, so the exported trace renders one timeline row
//! per worker.
//!
//! [`Span`](crate::Span) emits begin/end events automatically while
//! tracing is enabled, so every instrumented phase in the workspace shows
//! up without new call sites. [`TraceGuard`] is the standalone RAII
//! variant for regions that should appear in traces *without* entering
//! the span aggregate table, and [`trace_instant`] marks a point event
//! (a batch claim, a quarantine, a budget trip).
//!
//! [`crate::reset`] drains and discards all buffered events; the epoch is
//! deliberately kept so timestamps stay monotone across benchmark rows
//! that accumulate one trace file.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json_impl::Json;

/// Default per-thread event capacity (events, not bytes).
pub const DEFAULT_TRACE_CAP: usize = 1 << 18;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A region opened (`ph: "B"`).
    Begin,
    /// The most recent open region on this thread closed (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`, thread scope).
    Instant,
}

impl TraceEventKind {
    /// The Chrome trace `ph` phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            TraceEventKind::Begin => "B",
            TraceEventKind::End => "E",
            TraceEventKind::Instant => "i",
        }
    }
}

/// One buffered event: a name, a kind and a timestamp relative to the
/// trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span name, guard name or instant label).
    pub name: &'static str,
    /// Begin / end / instant.
    pub kind: TraceEventKind,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
}

/// All events one thread recorded, in emission order, plus its overflow
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceThread {
    /// Sequential thread id (stable for the thread's lifetime).
    pub tid: u64,
    /// Buffered events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events dropped after the buffer filled up.
    pub dropped: u64,
}

struct Ring {
    tid: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
}

/// Tri-state enabled flag: lazily initialized from `RSN_TRACE`.
const UNINIT: u8 = u8::MAX;
static ENABLED: AtomicU8 = AtomicU8::new(UNINIT);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static CAP: OnceLock<usize> = OnceLock::new();
static SINKS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Mutex<Ring>>> = const { std::cell::OnceCell::new() };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn capacity() -> usize {
    *CAP.get_or_init(|| {
        std::env::var("RSN_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_TRACE_CAP)
    })
}

/// `true` while event tracing is on. One relaxed atomic load; every
/// emission site checks this first, so disabled tracing is near-free.
#[inline]
pub fn trace_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        UNINIT => {
            let on = std::env::var("RSN_TRACE").is_ok_and(|v| {
                matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on")
            });
            ENABLED.store(on as u8, Ordering::Relaxed);
            on
        }
        v => v != 0,
    }
}

/// Switches event tracing on or off (wins over `RSN_TRACE`).
pub fn set_trace_enabled(on: bool) {
    ENABLED.store(on as u8, Ordering::Relaxed);
}

fn with_ring(f: impl FnOnce(&mut Ring)) {
    LOCAL.with(|cell| {
        let arc = cell.get_or_init(|| {
            let ring = Arc::new(Mutex::new(Ring {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Vec::new(),
                dropped: 0,
            }));
            SINKS.lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        f(&mut arc.lock().unwrap());
    });
}

/// Appends one event to the calling thread's buffer. Callers must have
/// checked [`trace_enabled`] already.
pub(crate) fn emit(name: &'static str, kind: TraceEventKind) {
    let ts_ns = epoch().elapsed().as_nanos() as u64;
    with_ring(|ring| {
        if ring.events.len() >= capacity() {
            ring.dropped += 1;
        } else {
            ring.events.push(TraceEvent { name, kind, ts_ns });
        }
    });
}

/// Records a point event on the calling thread (no-op while tracing is
/// disabled).
#[inline]
pub fn trace_instant(name: &'static str) {
    if trace_enabled() {
        emit(name, TraceEventKind::Instant);
    }
}

/// RAII region marker: emits a begin event on construction and the
/// matching end event on drop, independent of the span aggregate table.
/// Does nothing (and allocates nothing) while tracing is disabled; the
/// enabled check is latched at construction so a guard never emits an
/// unmatched end.
pub struct TraceGuard {
    name: &'static str,
    armed: bool,
}

impl TraceGuard {
    /// Opens a traced region named `name` on the calling thread.
    pub fn new(name: &'static str) -> TraceGuard {
        let armed = trace_enabled();
        if armed {
            emit(name, TraceEventKind::Begin);
        }
        TraceGuard { name, armed }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.armed {
            emit(self.name, TraceEventKind::End);
        }
    }
}

/// Removes and returns everything buffered so far, one entry per thread
/// that recorded at least one event (or dropped some). Buffers of
/// threads that have exited are drained and released; live threads keep
/// their id and continue recording into an emptied buffer.
pub fn trace_drain() -> Vec<TraceThread> {
    let mut sinks = SINKS.lock().unwrap();
    let mut out = Vec::new();
    for sink in sinks.iter() {
        let mut ring = sink.lock().unwrap();
        if ring.events.is_empty() && ring.dropped == 0 {
            continue;
        }
        out.push(TraceThread {
            tid: ring.tid,
            events: std::mem::take(&mut ring.events),
            dropped: std::mem::take(&mut ring.dropped),
        });
        ring.events.shrink_to_fit();
    }
    // A thread-local handle holds one strong reference; once the thread
    // exits only the registry's reference remains and the (now drained)
    // ring can be released.
    sinks.retain(|s| Arc::strong_count(s) > 1);
    out.sort_by_key(|t| t.tid);
    out
}

pub(crate) fn reset_trace() {
    let _ = trace_drain();
}

/// Renders drained trace threads as a Chrome trace ("JSON object format"):
/// `{"traceEvents": [...], "displayTimeUnit": "ms", "droppedEvents": N}`.
/// Every event carries `pid: 1`, its recording thread's `tid`, a
/// microsecond `ts` and the `ph` phase (`B`/`E`/`i`; instants get thread
/// scope `s: "t"`). Each thread additionally gets a `thread_name`
/// metadata record, so Perfetto and `chrome://tracing` label the rows.
pub fn chrome_trace(threads: &[TraceThread]) -> Json {
    let mut events = Vec::new();
    let mut dropped_total = 0u64;
    for t in threads {
        let mut meta = Json::obj();
        meta.set("name", Json::Str("thread_name".to_string()));
        meta.set("ph", Json::Str("M".to_string()));
        meta.set("pid", Json::Num(1.0));
        meta.set("tid", Json::Num(t.tid as f64));
        let mut args = Json::obj();
        args.set("name", Json::Str(format!("worker-{}", t.tid)));
        meta.set("args", args);
        events.push(meta);
        dropped_total += t.dropped;
        for e in &t.events {
            let mut o = Json::obj();
            o.set("name", Json::Str(e.name.to_string()));
            o.set("ph", Json::Str(e.kind.phase().to_string()));
            o.set("pid", Json::Num(1.0));
            o.set("tid", Json::Num(t.tid as f64));
            o.set("ts", Json::Num(e.ts_ns as f64 / 1e3));
            if e.kind == TraceEventKind::Instant {
                o.set("s", Json::Str("t".to_string()));
            }
            events.push(o);
        }
    }
    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(events));
    doc.set("displayTimeUnit", Json::Str("ms".to_string()));
    doc.set("droppedEvents", Json::Num(dropped_total as f64));
    doc
}
