//! Machine-readable run reports: one JSON object per instrumented run,
//! snapshotting the global registry, span tree and budget trips.

use std::collections::BTreeMap;

use crate::json_impl::Json;
use crate::metrics::{metrics_snapshot, Registry};
use crate::prom::render_prometheus;
use crate::span::{span_snapshot, SpanStat};
use crate::trip::{budget_trips, BudgetTrip};

/// A serializable snapshot of all observability state for one run.
///
/// Schema (`to_json`):
///
/// ```json
/// {
///   "name": "<run name>",
///   "counters": { "sat.conflicts": 12, ... },
///   "gauges": { "synth.phases.augment_ms": 0.41, ... },
///   "histograms": {
///     "sat.solve_ns": {
///       "count": 40, "sum": 812345, "min": 1042, "max": 99210,
///       "mean": 20308.6, "p50": 16383, "p90": 65535, "p99": 99210
///     },
///     ...
///   },
///   "budget_trips": [
///     { "engine": "sat", "reason": "work_limit",
///       "span": "pipeline/metric_ft", "at_ms": 1042.77 },
///     ...
///   ],
///   "spans": {
///     "synthesize/augment": { "calls": 1, "total_ms": 0.42 },
///     ...
///   }
/// }
/// ```
///
/// Histogram percentiles are the deterministic log2-bucket upper-bound
/// estimates of [`crate::Histogram::percentile`]; `budget_trips` lists
/// the first [`crate::MAX_BUDGET_TRIPS`] budget exhaustions with the
/// span path live where each engine observed its trip.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    pub name: String,
    pub registry: Registry,
    pub spans: BTreeMap<String, SpanStat>,
    pub budget_trips: Vec<BudgetTrip>,
}

impl RunReport {
    /// Snapshots the current global counters, gauges, histograms, span
    /// aggregates and budget trips under the given run name. Does not
    /// reset anything; pair with [`crate::reset`] to delimit runs.
    pub fn capture(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            registry: metrics_snapshot(),
            spans: span_snapshot(),
            budget_trips: budget_trips(),
        }
    }

    /// The report as a JSON value (see the struct docs for the schema).
    pub fn to_json_value(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.registry.counters {
            counters.set(k, Json::Num(*v as f64));
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.registry.gauges {
            gauges.set(k, Json::Num(*v));
        }
        let mut hists = Json::obj();
        for (k, h) in &self.registry.histograms {
            let mut o = Json::obj();
            o.set("count", Json::Num(h.count as f64));
            o.set("sum", Json::Num(h.sum as f64));
            o.set(
                "min",
                Json::Num(if h.is_empty() { 0.0 } else { h.min as f64 }),
            );
            o.set("max", Json::Num(h.max as f64));
            o.set("mean", Json::Num(h.mean()));
            o.set("p50", Json::Num(h.percentile(0.50) as f64));
            o.set("p90", Json::Num(h.percentile(0.90) as f64));
            o.set("p99", Json::Num(h.percentile(0.99) as f64));
            hists.set(k, o);
        }
        let mut trips = Vec::new();
        for t in &self.budget_trips {
            let mut o = Json::obj();
            o.set("engine", Json::Str(t.engine.to_string()));
            o.set("reason", Json::Str(t.reason.clone()));
            o.set("span", Json::Str(t.span_path.clone()));
            o.set("at_ms", Json::Num(t.at_ms));
            trips.push(o);
        }
        let mut spans = Json::obj();
        for (path, stat) in &self.spans {
            let mut s = Json::obj();
            s.set("calls", Json::Num(stat.calls as f64));
            s.set("total_ms", Json::Num(stat.total_ms()));
            spans.set(path, s);
        }
        let mut root = Json::obj();
        root.set("name", Json::Str(self.name.clone()));
        root.set("counters", counters);
        root.set("gauges", gauges);
        root.set("histograms", hists);
        root.set("budget_trips", Json::Arr(trips));
        root.set("spans", spans);
        root
    }

    /// Compact single-line JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Indented JSON, two spaces per level.
    pub fn to_json_pretty(&self) -> String {
        self.to_json_value().to_string_pretty(2)
    }

    /// The registry portion in Prometheus text exposition format (spans
    /// and budget trips are JSON-only).
    pub fn to_prometheus(&self) -> String {
        render_prometheus(&self.registry)
    }
}
