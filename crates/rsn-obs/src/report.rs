//! Machine-readable run reports: one JSON object per instrumented run,
//! snapshotting the global registry and span tree.

use std::collections::BTreeMap;

use crate::json_impl::Json;
use crate::metrics::{metrics_snapshot, Registry};
use crate::span::{span_snapshot, SpanStat};

/// A serializable snapshot of all observability state for one run.
///
/// Schema (`to_json`):
///
/// ```json
/// {
///   "name": "<run name>",
///   "counters": { "sat.conflicts": 12, ... },
///   "gauges": { "synth.phases.augment_ms": 0.41, ... },
///   "spans": {
///     "synthesize/augment": { "calls": 1, "total_ms": 0.42 },
///     ...
///   }
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    pub name: String,
    pub registry: Registry,
    pub spans: BTreeMap<String, SpanStat>,
}

impl RunReport {
    /// Snapshots the current global counters, gauges and span aggregates
    /// under the given run name. Does not reset anything; pair with
    /// [`crate::reset`] to delimit runs.
    pub fn capture(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            registry: metrics_snapshot(),
            spans: span_snapshot(),
        }
    }

    /// The report as a JSON value (see the struct docs for the schema).
    pub fn to_json_value(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.registry.counters {
            counters.set(k, Json::Num(*v as f64));
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.registry.gauges {
            gauges.set(k, Json::Num(*v));
        }
        let mut spans = Json::obj();
        for (path, stat) in &self.spans {
            let mut s = Json::obj();
            s.set("calls", Json::Num(stat.calls as f64));
            s.set("total_ms", Json::Num(stat.total_ms()));
            spans.set(path, s);
        }
        let mut root = Json::obj();
        root.set("name", Json::Str(self.name.clone()));
        root.set("counters", counters);
        root.set("gauges", gauges);
        root.set("spans", spans);
        root
    }

    /// Compact single-line JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Indented JSON, two spaces per level.
    pub fn to_json_pretty(&self) -> String {
        self.to_json_value().to_string_pretty(2)
    }
}
