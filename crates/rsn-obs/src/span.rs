//! Hierarchical wall-clock span timers.
//!
//! A [`Span`] measures the time between its creation and drop. Spans
//! nest through a thread-local stack: a span entered while another is
//! live aggregates under the parent's path, joined with `/`. Statistics
//! accumulate in a process-global table so repeated calls to the same
//! phase fold into one entry with a call count.
//!
//! While event tracing is enabled ([`crate::trace_enabled`]), every span
//! additionally emits a begin event on entry and the matching end event
//! on drop, so all existing span call sites show up in exported traces
//! without changes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

use crate::trace::{emit, trace_enabled, TraceEventKind};

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was entered.
    pub calls: u64,
    /// Total wall-clock time across all calls, in nanoseconds.
    pub total_ns: u128,
}

impl SpanStat {
    /// Total time in fractional milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

static SPANS: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A live timing region. Created with [`Span::enter`] (or nested via
/// [`Span::child`]); records its elapsed time into the global table on
/// drop. Not `Send`: the span must be dropped on the thread that entered
/// it, because nesting lives in a thread-local stack.
pub struct Span {
    path: String,
    name: &'static str,
    traced: bool,
    start: Instant,
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// Enters a span named `name`, nested under whatever span is live on
    /// this thread (if any).
    pub fn enter(name: &'static str) -> Span {
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.join("/")
        });
        // Latched here so enabling tracing mid-span never emits an
        // unmatched end event.
        let traced = trace_enabled();
        if traced {
            emit(name, TraceEventKind::Begin);
        }
        Span {
            path,
            name,
            traced,
            start: Instant::now(),
            _not_send: PhantomData,
        }
    }

    /// Enters a child span. Equivalent to [`Span::enter`] while `self`
    /// is live; provided for call-site readability.
    pub fn child(&self, name: &'static str) -> Span {
        Span::enter(name)
    }

    /// The slash-joined path of this span, e.g. `synthesize/augment`.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        if self.traced {
            emit(self.name, TraceEventKind::End);
        }
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let mut spans = SPANS.lock().unwrap();
        let stat = spans.entry(std::mem::take(&mut self.path)).or_default();
        stat.calls += 1;
        stat.total_ns += elapsed;
    }
}

/// Times a closure under a named span and returns its result.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(name);
    f()
}

/// Snapshot of all span aggregates, keyed by slash-joined path.
pub fn span_snapshot() -> BTreeMap<String, SpanStat> {
    SPANS.lock().unwrap().clone()
}

/// Slash-joined path of the spans currently live on this thread (empty
/// when none). Used by budget-trip backtraces.
pub(crate) fn current_path() -> String {
    STACK.with(|s| s.borrow().join("/"))
}

pub(crate) fn reset_spans() {
    SPANS.lock().unwrap().clear();
}
