//! Resource governance for long-running engines.
//!
//! Every potentially exponential engine in the toolchain — the CDCL SAT
//! solver, the branch-and-bound ILP, the BMC unrolling, whole-network
//! fault enumeration — accepts a shared [`Budget`] and polls it at its
//! natural work boundary (a conflict, a node, a fault). A budget combines
//! three independent limits:
//!
//! * a **wall-clock deadline** ([`Budget::with_deadline`]),
//! * a **work-unit limit** ([`Budget::with_work_limit`]) — the unit is
//!   whatever the polling engine counts (conflicts, nodes, faults), which
//!   makes limits deterministic and therefore testable,
//! * a **cooperative cancel flag** flipped from another thread through a
//!   [`CancelToken`].
//!
//! [`Budget::check`] is cheap enough for inner loops: a few relaxed
//! atomic operations, with the clock consulted only on the first check
//! and then every [`clock_stride`](Budget::with_clock_stride)-th check.
//! Exhaustion **latches**: once a budget has tripped, every subsequent
//! `check` fails with the same [`Reason`], so a pipeline of engines
//! sharing one budget degrades as a unit.
//!
//! Engines never panic or error out of a budget trip — they return their
//! best partial answer (`Unknown`, an unproven incumbent, a degraded
//! fallback) and the caller decides what that means. See DESIGN.md
//! §"Resource governance" for the per-engine degradation ladder.
//!
//! ```
//! use rsn_budget::{Budget, Reason};
//!
//! let budget = Budget::unlimited().with_work_limit(2);
//! assert!(budget.check().is_ok());
//! assert!(budget.check().is_ok());
//! assert_eq!(budget.check().unwrap_err().reason, Reason::WorkLimit);
//! // Latched: still exhausted, even though no more work is spent.
//! assert_eq!(budget.exhausted(), Some(Reason::WorkLimit));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget stopped admitting work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit limit was spent.
    WorkLimit,
    /// A [`CancelToken`] was cancelled.
    Cancelled,
}

impl Reason {
    /// Stable lowercase name, used in logs and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Reason::Deadline => "deadline",
            Reason::WorkLimit => "work_limit",
            Reason::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The error returned by [`Budget::check`] once the budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// The limit that tripped first (latched).
    pub reason: Reason,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget exhausted ({})", self.reason)
    }
}

impl std::error::Error for Exhausted {}

/// Latched-reason encoding in `Inner::tripped`: 0 = live.
const LIVE: u8 = 0;

fn encode(reason: Reason) -> u8 {
    match reason {
        Reason::Deadline => 1,
        Reason::WorkLimit => 2,
        Reason::Cancelled => 3,
    }
}

fn decode(raw: u8) -> Option<Reason> {
    match raw {
        1 => Some(Reason::Deadline),
        2 => Some(Reason::WorkLimit),
        3 => Some(Reason::Cancelled),
        _ => None,
    }
}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    work_limit: u64,
    clock_stride: u64,
    work: AtomicU64,
    cancelled: AtomicBool,
    tripped: AtomicU8,
}

/// A shareable deadline + work-unit budget with cooperative cancellation.
///
/// Cloning is cheap and every clone observes the same state (one shared
/// counter, one latch), so a budget handed to parallel workers bounds
/// their *combined* work. See the [crate docs](crate) for semantics.
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no deadline and no work limit. [`Budget::check`]
    /// only fails after [`cancel`](Budget::cancel).
    pub fn unlimited() -> Budget {
        Budget {
            inner: Arc::new(Inner {
                deadline: None,
                work_limit: u64::MAX,
                clock_stride: 64,
                work: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                tripped: AtomicU8::new(LIVE),
            }),
        }
    }

    /// Sets a wall-clock deadline `timeout` from now. A zero timeout
    /// trips on the very first check.
    #[must_use]
    pub fn with_deadline(self, timeout: Duration) -> Budget {
        self.rebuild(|inner| inner.deadline = Some(Instant::now() + timeout))
    }

    /// Sets the work-unit limit: the budget admits at most `limit` units
    /// through [`check`](Budget::check)/[`spend`](Budget::spend). A zero
    /// limit trips on the very first check.
    #[must_use]
    pub fn with_work_limit(self, limit: u64) -> Budget {
        self.rebuild(|inner| inner.work_limit = limit)
    }

    /// Consults the wall clock every `stride`-th work unit instead of
    /// the default 64 (the clock is always read on the first check, so a
    /// zero deadline trips deterministically).
    #[must_use]
    pub fn with_clock_stride(self, stride: u64) -> Budget {
        self.rebuild(|inner| inner.clock_stride = stride.max(1))
    }

    fn rebuild(self, f: impl FnOnce(&mut Inner)) -> Budget {
        // Builders run before the budget is shared; a fresh Arc keeps the
        // configuration immutable afterwards.
        let mut inner = Inner {
            deadline: self.inner.deadline,
            work_limit: self.inner.work_limit,
            clock_stride: self.inner.clock_stride,
            work: AtomicU64::new(self.inner.work.load(Ordering::Relaxed)),
            cancelled: AtomicBool::new(self.inner.cancelled.load(Ordering::Relaxed)),
            tripped: AtomicU8::new(self.inner.tripped.load(Ordering::Relaxed)),
        };
        f(&mut inner);
        Budget {
            inner: Arc::new(inner),
        }
    }

    /// Spends one work unit; the common inner-loop call.
    ///
    /// # Errors
    ///
    /// Fails with the latched [`Reason`] once any limit has tripped.
    #[inline]
    pub fn check(&self) -> Result<(), Exhausted> {
        self.spend(1)
    }

    /// Spends `units` work units at once (batch accounting for engines
    /// whose natural boundary covers many units).
    ///
    /// # Errors
    ///
    /// Fails with the latched [`Reason`] once any limit has tripped.
    pub fn spend(&self, units: u64) -> Result<(), Exhausted> {
        let inner = &*self.inner;
        if let Some(reason) = decode(inner.tripped.load(Ordering::Relaxed)) {
            return Err(Exhausted { reason });
        }
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(self.trip(Reason::Cancelled));
        }
        if inner.deadline.is_none() && inner.work_limit == u64::MAX {
            return Ok(()); // unlimited: skip the shared-counter traffic
        }
        let done = inner.work.fetch_add(units, Ordering::Relaxed) + units;
        if done > inner.work_limit {
            return Err(self.trip(Reason::WorkLimit));
        }
        if let Some(deadline) = inner.deadline {
            let crossed_stride = done / inner.clock_stride != (done - units) / inner.clock_stride;
            if (done == units || crossed_stride) && Instant::now() >= deadline {
                return Err(self.trip(Reason::Deadline));
            }
        }
        Ok(())
    }

    /// Latches `reason` (first trip wins) and returns the latched error.
    fn trip(&self, reason: Reason) -> Exhausted {
        let _ = self.inner.tripped.compare_exchange(
            LIVE,
            encode(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        Exhausted {
            reason: self.exhausted().unwrap_or(reason),
        }
    }

    /// The latched exhaustion reason, `None` while the budget is live.
    /// Only [`check`](Budget::check)/[`spend`](Budget::spend)/
    /// [`poll`](Budget::poll) latch — a deadline that passed without any
    /// engine noticing is not yet "exhausted".
    pub fn exhausted(&self) -> Option<Reason> {
        decode(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// Non-spending status probe: latches and reports exhaustion like
    /// [`check`](Budget::check) (including an unconditional clock read)
    /// but consumes no work unit. Orchestrators call this between
    /// pipeline stages.
    pub fn poll(&self) -> Option<Reason> {
        if let Some(reason) = self.exhausted() {
            return Some(reason);
        }
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(self.trip(Reason::Cancelled).reason);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Some(self.trip(Reason::Deadline).reason);
            }
        }
        None
    }

    /// Flips the cooperative cancel flag; the next check fails with
    /// [`Reason::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// A clonable, `Send` handle that cancels this budget from another
    /// thread.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Work units spent so far (across all clones).
    pub fn work_done(&self) -> u64 {
        self.inner.work.load(Ordering::Relaxed)
    }

    /// Time until the deadline, `None` without one. Zero once passed.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// `true` if neither a deadline nor a work limit is configured (the
    /// budget can still be cancelled).
    pub fn is_unlimited(&self) -> bool {
        self.inner.deadline.is_none() && self.inner.work_limit == u64::MAX
    }
}

/// Cancels the [`Budget`] it was taken from; clonable and `Send`, so it
/// can live on a control thread, a signal handler or a watchdog.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// Flips the cancel flag; every budget clone observes it on its next
    /// check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once cancelled (by any token or the budget itself).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }
}

/// The workspace-wide default worker-thread count.
///
/// Reads the `RSN_THREADS` environment variable (any integer ≥ 1);
/// when unset or unparsable it falls back to
/// [`std::thread::available_parallelism`], and to 1 when even that is
/// unknown. Both the fault-sweep work-stealing scheduler and the SAT
/// portfolio size their worker pools through this single knob, so one
/// variable pins the whole process to a core budget (e.g. in CI or
/// when benchmarking serial baselines).
///
/// Callers that need a cap apply it on top: `default_threads().min(16)`.
pub fn default_threads() -> usize {
    match std::env::var("RSN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.check().expect("unlimited");
        }
        assert!(b.is_unlimited());
        assert_eq!(b.exhausted(), None);
        assert_eq!(b.poll(), None);
        assert_eq!(b.remaining_time(), None);
    }

    #[test]
    fn work_limit_trips_exactly_after_limit() {
        let b = Budget::unlimited().with_work_limit(3);
        assert!(b.check().is_ok());
        assert!(b.check().is_ok());
        assert!(b.check().is_ok());
        let err = b.check().unwrap_err();
        assert_eq!(err.reason, Reason::WorkLimit);
        assert_eq!(b.exhausted(), Some(Reason::WorkLimit));
    }

    #[test]
    fn zero_work_limit_trips_on_first_check() {
        let b = Budget::unlimited().with_work_limit(0);
        assert_eq!(b.check().unwrap_err().reason, Reason::WorkLimit);
    }

    #[test]
    fn zero_deadline_trips_on_first_check() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.check().unwrap_err().reason, Reason::Deadline);
    }

    #[test]
    fn deadline_is_detected_within_one_clock_stride() {
        let b = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_clock_stride(8);
        // First check always reads the clock.
        assert_eq!(b.check().unwrap_err().reason, Reason::Deadline);

        let b = Budget::unlimited()
            .with_deadline(Duration::from_millis(5))
            .with_clock_stride(4);
        std::thread::sleep(Duration::from_millis(10));
        // The deadline has passed; at most `stride` checks may still
        // succeed before the next clock read trips.
        let mut passed = 0;
        loop {
            match b.check() {
                Ok(()) => passed += 1,
                Err(e) => {
                    assert_eq!(e.reason, Reason::Deadline);
                    break;
                }
            }
            assert!(passed <= 4, "overran the deadline by more than one stride");
        }
    }

    #[test]
    fn exhaustion_latches_first_reason() {
        let b = Budget::unlimited().with_work_limit(1);
        assert!(b.check().is_ok());
        assert_eq!(b.check().unwrap_err().reason, Reason::WorkLimit);
        b.cancel();
        // Already latched on WorkLimit; cancellation does not rewrite it.
        assert_eq!(b.check().unwrap_err().reason, Reason::WorkLimit);
    }

    #[test]
    fn cancel_token_trips_checks() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        assert!(b.check().is_ok());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.check().unwrap_err().reason, Reason::Cancelled);
        assert_eq!(b.exhausted(), Some(Reason::Cancelled));
    }

    #[test]
    fn cancel_token_works_across_threads() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        let handle = std::thread::spawn(move || token.cancel());
        handle.join().expect("cancel thread");
        assert_eq!(b.check().unwrap_err().reason, Reason::Cancelled);
    }

    #[test]
    fn clones_share_one_work_counter() {
        let b = Budget::unlimited().with_work_limit(4);
        let c = b.clone();
        assert!(b.check().is_ok());
        assert!(c.check().is_ok());
        assert!(b.check().is_ok());
        assert!(c.check().is_ok());
        assert_eq!(c.check().unwrap_err().reason, Reason::WorkLimit);
        assert_eq!(b.exhausted(), Some(Reason::WorkLimit));
        assert_eq!(b.work_done(), 5);
    }

    #[test]
    fn spend_accounts_batches() {
        let b = Budget::unlimited().with_work_limit(10);
        assert!(b.spend(7).is_ok());
        assert_eq!(b.spend(7).unwrap_err().reason, Reason::WorkLimit);
    }

    #[test]
    fn poll_does_not_spend_but_latches_deadline() {
        let b = Budget::unlimited().with_work_limit(5);
        assert_eq!(b.poll(), None);
        assert_eq!(b.work_done(), 0);

        let d = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(d.poll(), Some(Reason::Deadline));
        assert_eq!(d.check().unwrap_err().reason, Reason::Deadline);
    }

    #[test]
    fn remaining_time_counts_down() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        let r = b.remaining_time().expect("has deadline");
        assert!(r <= Duration::from_secs(3600));
        assert!(r > Duration::from_secs(3590));
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(Reason::Deadline.as_str(), "deadline");
        assert_eq!(Reason::WorkLimit.as_str(), "work_limit");
        assert_eq!(Reason::Cancelled.as_str(), "cancelled");
        let e = Exhausted {
            reason: Reason::Deadline,
        };
        assert_eq!(e.to_string(), "budget exhausted (deadline)");
    }
}
