//! Netlist export for reconfigurable scan networks.
//!
//! Emits an [`Rsn`](rsn_core::Rsn) — original or fault-tolerant — in two industry
//! formats:
//!
//! * [`to_verilog`] — a synthesizable structural Verilog module
//!   ([`verilog`]): one shift/shadow register pair per segment,
//!   continuous-assignment multiplexers, select logic from the stored
//!   [`ControlExpr`](rsn_core::ControlExpr)s, and a global
//!   capture/shift/update interface.
//! * [`to_icl`] — an IEEE Std 1687 ICL (Instrument Connectivity Language)
//!   description ([`icl`]): `ScanRegister`, `ScanMux` and `Alias`
//!   declarations mirroring the network topology.
//!
//! Both emitters are purely structural: they serialize exactly the model
//! that the analysis and synthesis operate on, so exported netlists match
//! the evaluated behavior.

pub mod icl;
pub mod icl_import;
pub mod pdl;
pub mod verilog;

pub use icl::to_icl;
pub use icl_import::{from_icl, ParseIclError};
pub use pdl::{read_access_pdl, write_access_pdl};
pub use verilog::to_verilog;

/// Sanitizes a node name into a Verilog/ICL-safe identifier.
pub(crate) fn ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_';
        if ok {
            if i == 0 && c.is_ascii_digit() {
                out.push('n');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::ident;

    #[test]
    fn ident_sanitizes_names() {
        assert_eq!(ident("m1.c0.sib"), "m1_c0_sib");
        assert_eq!(ident("scan_in"), "scan_in");
        assert_eq!(ident("0weird"), "n0weird");
        assert_eq!(ident(""), "_");
    }
}
