//! IEEE 1687 ICL import: parses the dialect produced by
//! [`to_icl`](crate::to_icl) back into an [`Rsn`], enabling round-trip
//! workflows (edit an exported description, re-analyze it) and round-trip
//! testing of the emitter.
//!
//! Supported subset: `Module`, `ScanInPort`/`ScanOutPort` (+ `Source`),
//! `DataInPort CTL[..]`, `ScanRegister name[h:0]` with `ScanInSource` and
//! the emitted `// Select := …` annotation, and `ScanMux … SelectedBy …`
//! with per-case sources. Select/address expressions use the emitted
//! grammar: `~x`, `(a && b)`, `(a || b)`, `name[bit]`, `CTL[i]`,
//! `1'b0/1'b1`.

use std::collections::HashMap;
use std::fmt;

use rsn_core::{ControlExpr, NodeId, Rsn, RsnBuilder};

/// Error from [`from_icl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIclError {
    /// 1-based line number (0 when the failure is structural).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseIclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "icl parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseIclError {}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Const(bool),
    Ref(String, u32),
    Ctl(u32),
    Not(Box<Expr>),
    And(Vec<Expr>),
    Or(Vec<Expr>),
}

/// Minimal recursive-descent parser for the emitted expression grammar.
struct ExprParser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> ExprParser<'a> {
    fn new(s: &'a str) -> Self {
        ExprParser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn parse(&mut self) -> Option<Expr> {
        let e = self.parse_binary()?;
        self.skip_ws();
        (self.pos == self.s.len()).then_some(e)
    }

    fn parse_binary(&mut self) -> Option<Expr> {
        let first = self.parse_unary()?;
        let mut items = vec![first];
        let mut op: Option<u8> = None;
        loop {
            self.skip_ws();
            let Some(two) = self.s.get(self.pos..self.pos + 2) else {
                break;
            };
            match two {
                b"&&" | b"||" => {
                    let this = two[0];
                    if let Some(prev) = op {
                        if prev != this {
                            return None; // mixed ops need parentheses
                        }
                    }
                    op = Some(this);
                    self.pos += 2;
                    items.push(self.parse_unary()?);
                }
                _ => break,
            }
            if self.pos >= self.s.len() {
                break;
            }
        }
        Some(match op {
            None => items.pop().expect("one item"),
            Some(b'&') => Expr::And(items),
            Some(_) => Expr::Or(items),
        })
    }

    fn parse_unary(&mut self) -> Option<Expr> {
        match self.peek()? {
            b'~' => {
                self.pos += 1;
                Some(Expr::Not(Box::new(self.parse_unary()?)))
            }
            b'(' => {
                self.pos += 1;
                let inner = self.parse_binary()?;
                self.skip_ws();
                if self.s.get(self.pos) != Some(&b')') {
                    return None;
                }
                self.pos += 1;
                Some(inner)
            }
            b'1' if self.s.get(self.pos..self.pos + 4) == Some(b"1'b0") => {
                self.pos += 4;
                Some(Expr::Const(false))
            }
            b'1' if self.s.get(self.pos..self.pos + 4) == Some(b"1'b1") => {
                self.pos += 4;
                Some(Expr::Const(true))
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .s
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.s[start..self.pos])
                    .ok()?
                    .to_string();
                if self.s.get(self.pos) != Some(&b'[') {
                    return None;
                }
                self.pos += 1;
                let num_start = self.pos;
                while self.s.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
                let bit: u32 = std::str::from_utf8(&self.s[num_start..self.pos])
                    .ok()?
                    .parse()
                    .ok()?;
                if self.s.get(self.pos) != Some(&b']') {
                    return None;
                }
                self.pos += 1;
                Some(if name == "CTL" {
                    Expr::Ctl(bit)
                } else {
                    Expr::Ref(name, bit)
                })
            }
            _ => None,
        }
    }
}

fn resolve(e: &Expr, names: &HashMap<String, NodeId>) -> Option<ControlExpr> {
    Some(match e {
        Expr::Const(b) => ControlExpr::Const(*b),
        Expr::Ref(name, bit) => ControlExpr::Reg(*names.get(name)?, *bit),
        Expr::Ctl(i) => ControlExpr::input(*i),
        Expr::Not(inner) => !resolve(inner, names)?,
        Expr::And(es) => ControlExpr::And(
            es.iter()
                .map(|x| resolve(x, names))
                .collect::<Option<Vec<_>>>()?,
        ),
        Expr::Or(es) => ControlExpr::Or(
            es.iter()
                .map(|x| resolve(x, names))
                .collect::<Option<Vec<_>>>()?,
        ),
    })
}

#[derive(Debug, Default)]
struct PendingRegister {
    length: u32,
    source: Option<String>,
    select: Option<Expr>,
    read_only: bool,
}

#[derive(Debug, Default)]
struct PendingMux {
    address: Vec<Expr>,
    cases: Vec<(usize, String)>,
}

/// Parses the emitted ICL dialect into an [`Rsn`].
///
/// # Errors
///
/// Returns [`ParseIclError`] on syntax outside the emitted subset, dangling
/// source references, or structural invalidity (propagated from the
/// builder).
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_export::{from_icl, to_icl};
///
/// let rsn = fig2();
/// let round = from_icl(&to_icl(&rsn))?;
/// assert_eq!(round.segments().count(), rsn.segments().count());
/// assert_eq!(round.muxes().count(), rsn.muxes().count());
/// # Ok::<(), rsn_export::ParseIclError>(())
/// ```
pub fn from_icl(text: &str) -> Result<Rsn, ParseIclError> {
    let err = |line: usize, message: String| ParseIclError { line, message };

    let mut module_name = String::from("imported");
    let mut registers: Vec<(String, PendingRegister)> = Vec::new();
    let mut muxes: Vec<(String, PendingMux)> = Vec::new();
    let mut scan_out_source: Option<String> = None;
    let mut secondary_in = false;
    let mut secondary_out_source: Option<String> = None;
    let mut num_inputs = 0u32;
    let mut pending_select: Option<Expr> = None;

    #[derive(PartialEq)]
    enum Ctx {
        Top,
        Register,
        Mux,
        ScanOut,
        ScanOut2,
    }
    let mut ctx = Ctx::Top;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let ln = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("// Select := ") {
            pending_select = ExprParser::new(rest).parse();
            continue;
        }
        if line.starts_with("//") {
            continue;
        }
        // Trailing annotations (e.g. "{ // TMR-hardened address") are
        // comments too; only the leading "// Select :=" form is semantic.
        let line = match line.find("//") {
            Some(i) => line[..i].trim_end(),
            None => line,
        };
        match ctx {
            Ctx::Top => {
                if let Some(rest) = line.strip_prefix("Module ") {
                    module_name = rest.trim_end_matches([' ', '{']).to_string();
                } else if line == "ScanInPort SI;" {
                    // primary port, implicit in the builder
                } else if line == "ScanInPort SI2;" {
                    secondary_in = true;
                } else if line.starts_with("ScanOutPort SO2") {
                    ctx = Ctx::ScanOut2;
                } else if line.starts_with("ScanOutPort SO") {
                    ctx = Ctx::ScanOut;
                } else if let Some(rest) = line.strip_prefix("DataInPort CTL[") {
                    let hi: u32 = rest
                        .split(':')
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(ln, "bad CTL range".into()))?;
                    num_inputs = hi + 1;
                } else if let Some(rest) = line.strip_prefix("ScanRegister ") {
                    let (name, range) = rest
                        .split_once('[')
                        .ok_or_else(|| err(ln, "register needs a range".into()))?;
                    let hi: u32 = range
                        .split(':')
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(ln, "bad register range".into()))?;
                    registers.push((
                        name.trim().to_string(),
                        PendingRegister {
                            length: hi + 1,
                            select: pending_select.take(),
                            ..PendingRegister::default()
                        },
                    ));
                    ctx = Ctx::Register;
                } else if let Some(rest) = line.strip_prefix("ScanMux ") {
                    let (name, addr_part) = rest
                        .split_once(" SelectedBy ")
                        .ok_or_else(|| err(ln, "mux needs SelectedBy".into()))?;
                    let addr_text = addr_part
                        .trim_end_matches('{')
                        .trim()
                        .trim_end_matches('{')
                        .trim();
                    let mut address = Vec::new();
                    for part in addr_text.split(", ") {
                        let e = ExprParser::new(part.trim())
                            .parse()
                            .ok_or_else(|| err(ln, format!("bad address expr {part:?}")))?;
                        address.push(e);
                    }
                    muxes.push((
                        name.trim().to_string(),
                        PendingMux {
                            address,
                            cases: Vec::new(),
                        },
                    ));
                    ctx = Ctx::Mux;
                } else if line == "}" {
                    // module end
                } else {
                    return Err(err(ln, format!("unexpected line {line:?}")));
                }
            }
            Ctx::Register => {
                if let Some(rest) = line.strip_prefix("ScanInSource ") {
                    registers.last_mut().expect("in register").1.source =
                        Some(rest.trim_end_matches(';').to_string());
                } else if line.contains("read-only") {
                    registers.last_mut().expect("in register").1.read_only = true;
                } else if line.starts_with("ResetValue") {
                    // zeros only in the emitted dialect
                } else if line == "}" {
                    ctx = Ctx::Top;
                } else {
                    return Err(err(ln, format!("unexpected register line {line:?}")));
                }
            }
            Ctx::Mux => {
                if line == "}" {
                    ctx = Ctx::Top;
                } else if let Some((case, src)) = line.split_once(" : ") {
                    let idx_text = case
                        .split("'b")
                        .nth(1)
                        .ok_or_else(|| err(ln, format!("bad case {case:?}")))?;
                    let idx = usize::from_str_radix(idx_text.trim(), 2)
                        .map_err(|e| err(ln, format!("bad case index: {e}")))?;
                    muxes
                        .last_mut()
                        .expect("in mux")
                        .1
                        .cases
                        .push((idx, src.trim_end_matches(';').to_string()));
                } else {
                    return Err(err(ln, format!("unexpected mux line {line:?}")));
                }
            }
            Ctx::ScanOut => {
                if let Some(rest) = line.strip_prefix("Source ") {
                    scan_out_source = Some(rest.trim_end_matches(';').to_string());
                } else if line == "}" {
                    ctx = Ctx::Top;
                }
            }
            Ctx::ScanOut2 => {
                if let Some(rest) = line.strip_prefix("Source ") {
                    secondary_out_source = Some(rest.trim_end_matches(';').to_string());
                } else if line == "}" {
                    ctx = Ctx::Top;
                }
            }
        }
    }

    // Build the network.
    let mut b = RsnBuilder::new(module_name);
    b.add_inputs(num_inputs);
    let mut names: HashMap<String, NodeId> = HashMap::new();
    for (name, reg) in &registers {
        let id = if reg.read_only {
            b.add_readonly_segment(name.clone(), reg.length)
        } else {
            b.add_segment(name.clone(), reg.length)
        };
        names.insert(name.clone(), id);
    }
    // The secondary scan-in must exist before mux inputs resolve: FT
    // networks route it into bypass multiplexers.
    if secondary_in {
        let si2 = b.add_secondary_scan_in("scan_in2");
        names.insert("SI2".into(), si2);
    }
    for (name, mux) in &muxes {
        let mut cases = mux.cases.clone();
        cases.sort_by_key(|&(i, _)| i);
        let inputs: Vec<NodeId> = cases
            .iter()
            .map(|(_, src)| resolve_source(src, &names, &b))
            .collect::<Result<_, _>>()
            .map_err(|m| err(0, m))?;
        let addr: Vec<ControlExpr> = mux
            .address
            .iter()
            .map(|e| resolve(e, &names).ok_or_else(|| err(0, "dangling address ref".into())))
            .collect::<Result<_, _>>()?;
        let id = b.add_mux(name.clone(), inputs, addr);
        names.insert(name.clone(), id);
    }
    // Connections and selects.
    for (name, reg) in &registers {
        let id = names[name];
        let src = reg
            .source
            .as_ref()
            .ok_or_else(|| err(0, format!("register {name} has no source")))?;
        let src_id = resolve_source(src, &names, &b).map_err(|m| err(0, m))?;
        b.connect(src_id, id);
        if let Some(sel) = &reg.select {
            let expr = resolve(sel, &names).ok_or_else(|| err(0, "dangling select ref".into()))?;
            if !reg.read_only || !matches!(expr, ControlExpr::Const(_)) {
                b.set_select(id, expr);
            }
        }
    }
    let so_src = scan_out_source.ok_or_else(|| err(0, "missing scan-out source".into()))?;
    let so_id = resolve_source(&so_src, &names, &b).map_err(|m| err(0, m))?;
    let scan_out = b.scan_out();
    b.connect(so_id, scan_out);
    if let Some(src) = secondary_out_source {
        let so2 = b.add_secondary_scan_out("scan_out2");
        let id = resolve_source(&src, &names, &b).map_err(|m| err(0, m))?;
        b.connect(id, so2);
    }
    b.finish().map_err(|e| err(0, format!("structural: {e}")))
}

fn resolve_source(
    src: &str,
    names: &HashMap<String, NodeId>,
    b: &RsnBuilder,
) -> Result<NodeId, String> {
    if src == "SI" {
        return Ok(b.scan_in());
    }
    if let Some(&id) = names.get(src) {
        return Ok(id); // mux or SI2
    }
    if let Some(reg) = src.strip_suffix(".SO") {
        return names
            .get(reg)
            .copied()
            .ok_or_else(|| format!("dangling source {src:?}"));
    }
    Err(format!("dangling source {src:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_icl;
    use rsn_core::examples::{chain, fig2, sib_tree};
    use rsn_itc02::by_name;
    use rsn_sib::generate;

    fn roundtrip_structure(rsn: &Rsn) {
        let icl = to_icl(rsn);
        let back = from_icl(&icl).expect("parse emitted dialect");
        assert_eq!(back.segments().count(), rsn.segments().count());
        assert_eq!(back.muxes().count(), rsn.muxes().count());
        assert_eq!(back.total_bits(), rsn.total_bits());
        // Behavior: the reset paths visit the same segment names.
        let orig: Vec<String> = rsn
            .trace_path(&rsn.reset_config())
            .expect("orig")
            .segments(rsn)
            .map(|s| rsn.node(s).name().replace(['.', '-'], "_"))
            .collect();
        let re: Vec<String> = back
            .trace_path(&back.reset_config())
            .expect("back")
            .segments(&back)
            .map(|s| back.node(s).name().to_string())
            .collect();
        assert_eq!(orig, re);
    }

    #[test]
    fn fig2_roundtrips() {
        roundtrip_structure(&fig2());
    }

    #[test]
    fn chain_roundtrips() {
        roundtrip_structure(&chain(4, 5));
    }

    #[test]
    fn sib_tree_roundtrips() {
        roundtrip_structure(&sib_tree(2, 2, 3));
    }

    #[test]
    fn benchmark_roundtrips() {
        let soc = by_name("q12710").expect("embedded");
        roundtrip_structure(&generate(&soc).expect("generate"));
    }

    #[test]
    fn reimported_network_is_analyzable() {
        let soc = by_name("x1331").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let back = from_icl(&to_icl(&rsn)).expect("parse");
        // The re-imported network supports the same access planning.
        for seg in back.segments().take(8) {
            assert!(back.is_accessible(seg), "{}", back.node(seg).name());
        }
    }

    #[test]
    fn synthesized_ft_network_roundtrips() {
        // FT netlists exercise the importer corners: a secondary scan-in
        // feeding bypass muxes (SI2 must resolve as a mux input), a
        // secondary scan-out, and trailing "// TMR-hardened address"
        // comments on ScanMux lines.
        let rsn = fig2();
        let result =
            rsn_synth::synthesize(&rsn, &rsn_synth::SynthesisOptions::new()).expect("synthesize");
        let icl = to_icl(&result.rsn);
        assert!(icl.contains("ScanInPort SI2;"), "fixture lost its FT port");
        let back = from_icl(&icl).expect("parse FT dialect");
        assert_eq!(back.segments().count(), result.rsn.segments().count());
        assert_eq!(back.muxes().count(), result.rsn.muxes().count());
        assert_eq!(back.total_bits(), result.rsn.total_bits());
    }

    #[test]
    fn malformed_icl_is_rejected() {
        assert!(from_icl("Module x {\n  Bogus;\n}\n").is_err());
        assert!(from_icl("Module x {\n  ScanRegister r[1:0] {\n  }\n}\n").is_err());
    }
}
