//! IEEE 1687 PDL (Procedural Description Language) emission.
//!
//! Turns computed access plans into the `iWrite`/`iRead`/`iApply` command
//! sequences a 1687 retargeting tool would replay on the tester: each CSU
//! of the plan becomes one `iApply` preceded by the register writes that
//! CSU performs. This is the executable counterpart of the paper's access
//! computation — including access in *faulty* networks, where the plan
//! routes around the fault site.

use std::fmt::Write as _;

use rsn_core::access::AccessPlan;
use rsn_core::{Config, NodeId, Rsn};

use crate::ident;

/// Formats a register value as a PDL binary literal (`5'b10110`).
fn bin_literal(bits: &[bool]) -> String {
    let mut s = format!("{}'b", bits.len());
    // PDL literals are written MSB first; our bit 0 is the LSB.
    for &b in bits.iter().rev() {
        s.push(if b { '1' } else { '0' });
    }
    s
}

/// Register values of a segment in a configuration.
fn reg_value(rsn: &Rsn, cfg: &Config, seg: NodeId) -> Option<Vec<bool>> {
    let off = rsn.shadow_offset(seg)?;
    let len = rsn.shadow_len(seg);
    Some((0..len).map(|i| cfg.bit((off + i) as usize)).collect())
}

/// Emits the `iWrite` lines for the registers that differ between two
/// configurations.
fn emit_diff(rsn: &Rsn, out: &mut String, prev: &Config, next: &Config) {
    for seg in rsn.segments() {
        let (Some(a), Some(b)) = (reg_value(rsn, prev, seg), reg_value(rsn, next, seg)) else {
            continue;
        };
        if a != b {
            let _ = writeln!(
                out,
                "    iWrite {} {};",
                ident(rsn.node(seg).name()),
                bin_literal(&b)
            );
        }
    }
}

/// Emits a PDL procedure performing a *write* access per the plan: the
/// setup CSUs followed by the data write.
///
/// # Example
///
/// ```
/// use rsn_core::examples::sib_tree;
/// use rsn_export::pdl::write_access_pdl;
///
/// let rsn = sib_tree(1, 2, 4);
/// let leaf = rsn.find("t00.seg").expect("leaf");
/// let plan = rsn.plan_access(leaf, &rsn.reset_config())?;
/// let pdl = write_access_pdl(&rsn, &plan, &[true, false, true, true]);
/// assert!(pdl.contains("iApply;"));
/// assert!(pdl.contains("iWrite t00_seg 4'b1101;"));
/// # Ok::<(), rsn_core::Error>(())
/// ```
pub fn write_access_pdl(rsn: &Rsn, plan: &AccessPlan, value: &[bool]) -> String {
    let mut out = String::new();
    let target = ident(rsn.node(plan.target).name());
    let _ = writeln!(out, "iProcGroup {};", ident(rsn.name()));
    let _ = writeln!(out, "iProc write_{target} {{}} {{");
    let mut prev = rsn.reset_config();
    for step in &plan.steps {
        emit_diff(rsn, &mut out, &prev, step);
        let _ = writeln!(out, "    iApply;");
        prev = step.clone();
    }
    let _ = writeln!(out, "    iWrite {target} {};", bin_literal(value));
    let _ = writeln!(out, "    iApply;");
    let _ = writeln!(out, "}}");
    out
}

/// Emits a PDL procedure performing a *read* access per the plan: setup
/// CSUs, then a read with an optional expected value.
pub fn read_access_pdl(rsn: &Rsn, plan: &AccessPlan, expect: Option<&[bool]>) -> String {
    let mut out = String::new();
    let target = ident(rsn.node(plan.target).name());
    let _ = writeln!(out, "iProcGroup {};", ident(rsn.name()));
    let _ = writeln!(out, "iProc read_{target} {{}} {{");
    let mut prev = rsn.reset_config();
    for step in &plan.steps {
        emit_diff(rsn, &mut out, &prev, step);
        let _ = writeln!(out, "    iApply;");
        prev = step.clone();
    }
    match expect {
        Some(bits) => {
            let _ = writeln!(out, "    iRead {target} {};", bin_literal(bits));
        }
        None => {
            let _ = writeln!(out, "    iRead {target};");
        }
    }
    let _ = writeln!(out, "    iApply;");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, sib_tree};

    #[test]
    fn chain_write_needs_single_apply_pair() {
        let rsn = chain(3, 4);
        let s1 = rsn.find("S1").expect("segment");
        let plan = rsn.plan_access(s1, &rsn.reset_config()).expect("plan");
        let pdl = write_access_pdl(&rsn, &plan, &[true; 4]);
        assert_eq!(pdl.matches("iApply;").count(), 1, "{pdl}");
        assert!(pdl.contains("iWrite S1 4'b1111;"));
    }

    #[test]
    fn nested_target_opens_hierarchy_first() {
        let rsn = sib_tree(2, 2, 4);
        let leaf = rsn.find("t000.seg").expect("leaf");
        let plan = rsn.plan_access(leaf, &rsn.reset_config()).expect("plan");
        let pdl = write_access_pdl(&rsn, &plan, &[false, true, false, true]);
        // Two hierarchy levels: two setup applies + the data apply.
        assert_eq!(pdl.matches("iApply;").count(), 3, "{pdl}");
        assert!(pdl.contains("iWrite t0_sib 1'b1;"), "{pdl}");
        assert!(pdl.contains("iWrite t00_sib 1'b1;"), "{pdl}");
        assert!(pdl.contains("iWrite t000_seg 4'b1010;"), "{pdl}");
    }

    #[test]
    fn read_pdl_emits_iread_with_expectation() {
        let rsn = sib_tree(1, 2, 2);
        let leaf = rsn.find("t10.seg").expect("leaf");
        let plan = rsn.plan_access(leaf, &rsn.reset_config()).expect("plan");
        let pdl = read_access_pdl(&rsn, &plan, Some(&[true, false]));
        assert!(pdl.contains("iRead t10_seg 2'b01;"), "{pdl}");
        let pdl = read_access_pdl(&rsn, &plan, None);
        assert!(pdl.contains("iRead t10_seg;"), "{pdl}");
    }

    #[test]
    fn binary_literals_are_msb_first() {
        assert_eq!(bin_literal(&[true, false, false]), "3'b001");
        assert_eq!(bin_literal(&[false, true]), "2'b10");
        assert_eq!(bin_literal(&[]), "0'b");
    }
}
