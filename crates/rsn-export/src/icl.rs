//! IEEE Std 1687 ICL (Instrument Connectivity Language) emission.
//!
//! The emitted module describes the same topology the analysis operates
//! on: one `ScanRegister` per segment, one `ScanMux` per multiplexer, and
//! `ScanInPort`/`ScanOutPort` declarations. Select expressions are carried
//! in comments (ICL derives selection from the network description; the
//! comment documents the analyzed predicate).

use std::fmt::Write as _;

use rsn_core::{ControlExpr, NodeKind, Rsn};

use crate::ident;

fn expr_to_icl(rsn: &Rsn, e: &ControlExpr) -> String {
    match e {
        ControlExpr::Const(b) => {
            if *b {
                "1'b1".into()
            } else {
                "1'b0".into()
            }
        }
        ControlExpr::Reg(n, bit) => format!("{}[{bit}]", ident(rsn.node(*n).name())),
        ControlExpr::Input(i) => format!("CTL[{}]", i.0),
        ControlExpr::Not(inner) => format!("~{}", expr_to_icl(rsn, inner)),
        ControlExpr::And(es) => {
            let parts: Vec<String> = es.iter().map(|x| expr_to_icl(rsn, x)).collect();
            format!("({})", parts.join(" && "))
        }
        ControlExpr::Or(es) => {
            let parts: Vec<String> = es.iter().map(|x| expr_to_icl(rsn, x)).collect();
            format!("({})", parts.join(" || "))
        }
    }
}

fn source_ref(rsn: &Rsn, id: rsn_core::NodeId) -> String {
    let n = rsn.node(id);
    match n.kind() {
        NodeKind::ScanIn => {
            if Some(id) == rsn.secondary_scan_in() {
                "SI2".into()
            } else {
                "SI".into()
            }
        }
        NodeKind::Segment(_) => format!("{}.SO", ident(n.name())),
        NodeKind::Mux(_) => ident(n.name()),
        NodeKind::ScanOut => unreachable!("scan-out is never a source"),
    }
}

/// Emits the network as an IEEE 1687 ICL module.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_export::to_icl;
///
/// let icl = to_icl(&fig2());
/// assert!(icl.starts_with("Module fig2 {"));
/// assert!(icl.contains("ScanRegister A"));
/// ```
pub fn to_icl(rsn: &Rsn) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Module {} {{", ident(rsn.name()));
    let _ = writeln!(out, "  ScanInPort SI;");
    if rsn.secondary_scan_in().is_some() {
        let _ = writeln!(out, "  ScanInPort SI2;");
    }
    let _ = writeln!(out, "  ScanOutPort SO {{");
    let so_src = source_ref(rsn, rsn.node(rsn.scan_out()).source().expect("driven"));
    let _ = writeln!(out, "    Source {so_src};");
    let _ = writeln!(out, "  }}");
    if let Some(so2) = rsn.secondary_scan_out() {
        if let Some(src) = rsn.node(so2).source() {
            let _ = writeln!(out, "  ScanOutPort SO2 {{");
            let _ = writeln!(out, "    Source {};", source_ref(rsn, src));
            let _ = writeln!(out, "  }}");
        }
    }
    if rsn.num_inputs() > 0 {
        let _ = writeln!(out, "  DataInPort CTL[{}:0];", rsn.num_inputs() - 1);
    }
    let _ = writeln!(out);

    for id in rsn.node_ids() {
        let n = rsn.node(id);
        match n.kind() {
            NodeKind::Segment(s) => {
                let nm = ident(n.name());
                let src = source_ref(rsn, n.source().expect("validated"));
                let _ = writeln!(out, "  // Select := {}", expr_to_icl(rsn, &s.select));
                let _ = writeln!(out, "  ScanRegister {nm}[{}:0] {{", s.length - 1);
                let _ = writeln!(out, "    ScanInSource {src};");
                let _ = writeln!(
                    out,
                    "    ResetValue {}'b{};",
                    s.length,
                    "0".repeat(s.length as usize)
                );
                if !s.has_shadow {
                    let _ = writeln!(out, "    // read-only register (no update stage)");
                }
                let _ = writeln!(out, "  }}");
            }
            NodeKind::Mux(m) => {
                let nm = ident(n.name());
                let addr: Vec<String> = m.addr_bits.iter().map(|e| expr_to_icl(rsn, e)).collect();
                let hardened = if m.hardened {
                    " // TMR-hardened address"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  ScanMux {nm} SelectedBy {} {{{hardened}",
                    addr.join(", ")
                );
                for (k, &inp) in m.inputs.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "    {}'b{:0width$b} : {};",
                        m.addr_bits.len().max(1),
                        k,
                        source_ref(rsn, inp),
                        width = m.addr_bits.len().max(1)
                    );
                }
                let _ = writeln!(out, "  }}");
            }
            _ => {}
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};
    use rsn_itc02::by_name;
    use rsn_sib::generate;
    use rsn_synth::{synthesize, SynthesisOptions};

    fn balanced(s: &str) {
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close, "unbalanced braces");
    }

    #[test]
    fn fig2_icl_contains_all_elements() {
        let rsn = fig2();
        let icl = to_icl(&rsn);
        balanced(&icl);
        for name in ["A", "B", "C", "D"] {
            assert!(icl.contains(&format!("ScanRegister {name}[")), "{name}");
        }
        assert!(icl.contains("ScanMux M SelectedBy"));
        assert!(icl.contains("ScanInPort SI;"));
        assert!(icl.contains("ScanOutPort SO"));
    }

    #[test]
    fn chain_icl_chains_sources() {
        let icl = to_icl(&chain(3, 2));
        balanced(&icl);
        assert!(icl.contains("ScanInSource SI;"));
        assert!(icl.contains("ScanInSource S0.SO;"));
        assert!(icl.contains("ScanInSource S1.SO;"));
    }

    #[test]
    fn ft_network_icl_has_secondary_ports() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let icl = to_icl(&ft.rsn);
        balanced(&icl);
        assert!(icl.contains("ScanInPort SI2;"));
        assert!(icl.contains("ScanOutPort SO2"));
        assert!(icl.contains("TMR-hardened"));
        assert!(icl.contains("DataInPort CTL["));
    }

    #[test]
    fn mux_cases_enumerate_inputs() {
        let icl = to_icl(&fig2());
        assert!(icl.contains("1'b0 : B.SO;"));
        assert!(icl.contains("1'b1 : C.SO;"));
    }
}
