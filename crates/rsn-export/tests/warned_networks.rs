//! Emission must not be gated on a clean verification verdict: a network
//! with warning-severity diagnostics (dead logic, unobservable segments)
//! is still a valid netlist, and the flow's contract is "emit anyway,
//! surface the warnings next to the artifact".

use rsn_core::{ControlExpr, RsnBuilder};
use rsn_export::{to_icl, to_verilog};
use rsn_verify::{verify, Code, Severity};

/// A network that is structurally sound but carries warnings: `live` is
/// the whole active path, while `spur` hangs off the scan-in with a
/// constant-false select and no route to any scan-out port.
fn warned_network() -> rsn_core::Rsn {
    let mut b = RsnBuilder::new("warned");
    let live = b.add_segment("live", 8);
    let spur = b.add_segment("spur", 4);
    b.set_select(live, ControlExpr::Const(true));
    b.set_select(spur, ControlExpr::Const(false));
    b.connect(b.scan_in(), live);
    b.connect(live, b.scan_out());
    b.connect(b.scan_in(), spur);
    b.finish().expect("network builds")
}

#[test]
fn verilog_and_icl_emission_succeed_for_warned_network() {
    let rsn = warned_network();

    let report = verify(&rsn);
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert!(report.warning_count() > 0, "{}", report.render());
    let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&Code::NeverSelected));
    assert!(codes.contains(&Code::CannotReachScanOut));

    // Emission is unconditional: both backends produce a netlist for the
    // warned network, including the dead segment.
    let v = to_verilog(&rsn);
    assert!(v.contains("module"), "verilog emitted:\n{v}");
    assert!(v.contains("spur"), "dead segment still present:\n{v}");
    let icl = to_icl(&rsn);
    assert!(icl.contains("spur"), "dead segment still present:\n{icl}");

    // The warnings travel alongside the artifact, not inside it: the
    // rendered report names every warned node.
    let rendered = report.render();
    for d in &report.diagnostics {
        assert_eq!(d.severity, Severity::Warning);
        assert!(rendered.contains(&d.node_name));
    }
}
