//! SAT-backed static verification of reconfigurable scan networks.
//!
//! Where `Rsn::lint` samples random configurations and can miss rare
//! misconfigurations, this crate *proves* properties over all
//! configurations: every select predicate is checked for satisfiability
//! and for agreement with active-scan-path membership by a SAT query over
//! the network's control CNF, multiplexer decode logic is checked per
//! input, and shadow registers that feed control logic are proven
//! placeable on a scan path. Graph passes cover reachability, cyclic
//! control dependencies (SCC) and — given the synthesis's augmentation
//! edges — redundant fault-tolerance edges that raise no
//! vertex-independent path count.
//!
//! Findings come back as [`Diagnostic`]s with stable `RSN0xx` codes,
//! severities, node provenance and — for existence findings — a witness
//! [`Config`](rsn_core::Config) that reproduces the issue through the
//! simulator. See `DESIGN.md` for the full check catalog.
//!
//! ```
//! let rsn = rsn_core::examples::fig2();
//! let report = rsn_verify::verify(&rsn);
//! assert!(report.is_clean());
//! println!("{}", report.render());
//! ```

mod augment;
mod checks;
mod cone;
mod diag;
mod encode;
mod explain;

pub use augment::{ineffective_augmentation, IneffectiveEdge};
pub use cone::cone_of_influence;
pub use diag::{Code, Diagnostic, Severity, VerifyReport};
pub use encode::{ClauseOrigin, NetworkSat, SatScratch};
pub use explain::{
    explain_report, replay_eliminates, ControlBitFix, Explanation, RepairAction, RepairHint,
};

use rsn_budget::Budget;
use rsn_core::Rsn;

/// Which check families [`verify_with`] runs. All are on by default.
///
/// Select and mux checks are meaningless on networks whose selects were
/// never materialized (`SelectMode::Never` leaves constant-true
/// placeholders); callers synthesizing such networks disable them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Per-segment select satisfiability and select/path agreement
    /// (`RSN001`, `RSN002`).
    pub select_checks: bool,
    /// Multiplexer decode checks (`RSN003`, `RSN004`, `RSN005`).
    pub mux_checks: bool,
    /// Shadow-controllability of control registers (`RSN010`).
    pub controllability: bool,
    /// Reachability and shadow-less address sources (`RSN006`, `RSN007`,
    /// `RSN008`).
    pub structural: bool,
    /// Cyclic control dependencies (`RSN009`).
    pub control_cycles: bool,
    /// Solver threads for the SAT-backed families: `1` (the default)
    /// keeps every query on the bit-reproducible serial CDCL loop,
    /// larger values route queries through the portfolio solver
    /// ([`rsn_sat::Solver::set_threads`]).
    pub solver_threads: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            select_checks: true,
            mux_checks: true,
            controllability: true,
            structural: true,
            control_cycles: true,
            solver_threads: 1,
        }
    }
}

impl VerifyOptions {
    /// Options for networks with placeholder (non-materialized) selects:
    /// select-predicate checks are off, everything else on.
    pub fn without_select_checks() -> Self {
        VerifyOptions {
            select_checks: false,
            ..VerifyOptions::default()
        }
    }
}

/// Verifies `rsn` with every check enabled.
pub fn verify(rsn: &Rsn) -> VerifyReport {
    verify_with(rsn, VerifyOptions::default())
}

/// Verifies `rsn` with the selected check families.
///
/// Builds one CNF model of the network's control logic and active-path
/// membership, then answers every semantic question with an incremental
/// assumption query against it. The returned report orders diagnostics
/// by check family, then by node.
pub fn verify_with(rsn: &Rsn, opts: VerifyOptions) -> VerifyReport {
    verify_under(rsn, opts, &Budget::unlimited())
}

/// Like [`verify_with`], bounded by a [`Budget`].
///
/// One work unit is spent per check family. Families the budget starves
/// are recorded in [`VerifyReport::incomplete`] — their properties are
/// *unproven*, never silently passed — and `lint.incomplete` /
/// `budget.exhausted` events are counted. Families that did run report
/// exactly as under [`verify_with`]; with an unlimited budget the result
/// is identical.
pub fn verify_under(rsn: &Rsn, opts: VerifyOptions, budget: &Budget) -> VerifyReport {
    verify_impl(rsn, opts, budget, None)
}

/// Like [`verify_under`], but queries a prebuilt shared [`NetworkSat`]
/// instead of encoding the CNF itself. Resident callers (rsn-serve)
/// cache the model per network and pass it here, so repeat verification
/// of the same network skips construction entirely; solver state still
/// lives in a private per-call scratch, so concurrent calls against one
/// model are safe.
///
/// `sat` must have been built from this same `rsn`.
pub fn verify_on(
    rsn: &Rsn,
    sat: &NetworkSat,
    opts: VerifyOptions,
    budget: &Budget,
) -> VerifyReport {
    verify_impl(rsn, opts, budget, Some(sat))
}

fn verify_impl(
    rsn: &Rsn,
    opts: VerifyOptions,
    budget: &Budget,
    shared: Option<&NetworkSat>,
) -> VerifyReport {
    // Chaos failpoint: injected errors / budget exhaustion cancel the
    // budget, so every check family lands in `incomplete` (unproven,
    // never silently passed).
    if rsn_fail::eval("verify.run").is_some() {
        budget.cancel();
    }
    let _trace = rsn_obs::TraceGuard::new("verify");
    let start = std::time::Instant::now();
    let mut report = VerifyReport {
        network: rsn.name().to_string(),
        nodes: rsn.node_count(),
        ..VerifyReport::default()
    };

    if opts.structural {
        if budget.check().is_ok() {
            report.checks_run.push("structural");
            report.diagnostics.extend(checks::structural(rsn));
        } else {
            report.incomplete.push("structural");
        }
    }

    let needs_sat = opts.select_checks || opts.mux_checks || opts.controllability;
    if needs_sat {
        // Built lazily so a fully starved run skips the CNF encoding
        // (unless a resident caller already holds a shared model). The
        // model is immutable; this run's solver state lives in its own
        // scratch.
        let mut owned: Option<NetworkSat> = None;
        let mut scratch: Option<SatScratch> = None;
        if opts.select_checks {
            if budget.check().is_ok() {
                let sat = match shared {
                    Some(s) => s,
                    None => owned.get_or_insert_with(|| NetworkSat::build(rsn)),
                };
                let scr = scratch.get_or_insert_with(|| {
                    let mut s = sat.scratch();
                    s.set_threads(opts.solver_threads);
                    s
                });
                report.checks_run.push("selects");
                report
                    .diagnostics
                    .extend(checks::select_checks(rsn, sat, scr));
            } else {
                report.incomplete.push("selects");
            }
        }
        if opts.mux_checks {
            if budget.check().is_ok() {
                let sat = match shared {
                    Some(s) => s,
                    None => owned.get_or_insert_with(|| NetworkSat::build(rsn)),
                };
                let scr = scratch.get_or_insert_with(|| {
                    let mut s = sat.scratch();
                    s.set_threads(opts.solver_threads);
                    s
                });
                report.checks_run.push("muxes");
                report.diagnostics.extend(checks::mux_checks(rsn, sat, scr));
            } else {
                report.incomplete.push("muxes");
            }
        }
        if opts.controllability {
            if budget.check().is_ok() {
                let sat = match shared {
                    Some(s) => s,
                    None => owned.get_or_insert_with(|| NetworkSat::build(rsn)),
                };
                let scr = scratch.get_or_insert_with(|| {
                    let mut s = sat.scratch();
                    s.set_threads(opts.solver_threads);
                    s
                });
                report.checks_run.push("controllability");
                report
                    .diagnostics
                    .extend(checks::controllability(rsn, sat, scr));
            } else {
                report.incomplete.push("controllability");
            }
        }
        if let Some(scr) = &scratch {
            report.sat_queries = scr.queries();
        }
    }

    if opts.control_cycles {
        if budget.check().is_ok() {
            report.checks_run.push("control-cycles");
            report.diagnostics.extend(checks::control_cycles(rsn));
        } else {
            report.incomplete.push("control-cycles");
        }
    }

    rsn_obs::counter_add("lint.runs", 1);
    rsn_obs::counter_add("lint.errors", report.error_count() as u64);
    rsn_obs::counter_add("lint.warnings", report.warning_count() as u64);
    rsn_obs::counter_add("lint.sat_queries", report.sat_queries as u64);
    // One attribution unit per check family that actually ran (the SAT
    // work inside is attributed to the sat engine by the solver itself).
    rsn_obs::counter_add(
        "budget.spent{engine=verify}",
        report.checks_run.len() as u64,
    );
    if !report.incomplete.is_empty() {
        rsn_obs::counter_add("lint.incomplete", report.incomplete.len() as u64);
        rsn_obs::counter_add("budget.exhausted", 1);
        let reason = budget.exhausted().map_or("work_limit", |r| r.as_str());
        rsn_obs::record_budget_trip("verify", reason);
    }
    rsn_obs::gauge_set("lint.verify_ms", start.elapsed().as_secs_f64() * 1e3);

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::{examples, ControlExpr, RsnBuilder};

    #[test]
    fn example_networks_verify_clean() {
        for rsn in [
            examples::fig2(),
            examples::chain(4, 8),
            examples::sib_tree(2, 2, 4),
        ] {
            let report = verify(&rsn);
            assert!(
                report.is_clean(),
                "{} not clean:\n{}",
                rsn.name(),
                report.render()
            );
            assert_eq!(report.warning_count(), 0, "{}", report.render());
            assert!(report.sat_queries > 0);
        }
    }

    #[test]
    fn unsatisfiable_select_is_proven_never_selected() {
        // select = in0 AND NOT in0 — sampling sees a plain `false`, the
        // solver proves it without enumerating.
        let mut b = RsnBuilder::new("unsat-select");
        let i = b.add_inputs(1);
        let s = b.add_segment("seg", 4);
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        b.set_select(
            s,
            ControlExpr::And(vec![
                ControlExpr::input(i),
                ControlExpr::Not(Box::new(ControlExpr::input(i))),
            ]),
        );
        let rsn = b.finish().unwrap();
        let report = verify(&rsn);
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::NeverSelected), "{}", report.render());
        // Never selected but always on the structural path: also a
        // select/path mismatch, with a witness.
        let mismatch = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SelectPathMismatch)
            .expect("mismatch diagnostic");
        assert!(mismatch.witness.is_some());
        assert!(!report.is_clean());
    }

    #[test]
    fn select_path_mismatch_witness_replays_through_simulator() {
        // Two parallel branches behind a mux, but branch selects ignore
        // the mux address: whichever branch is deselected while routed is
        // a mismatch, and the witness must reproduce it in the simulator.
        let mut b = RsnBuilder::new("mismatch");
        let i = b.add_inputs(1);
        let a = b.add_segment("a", 2);
        let c = b.add_segment("c", 2);
        let m = b.add_mux("m", vec![a, c], vec![ControlExpr::input(i)]);
        b.connect(b.scan_in(), a);
        b.connect(b.scan_in(), c);
        b.connect(m, b.scan_out());
        b.set_select(a, ControlExpr::Const(true));
        b.set_select(c, ControlExpr::Const(true));
        let rsn = b.finish().unwrap();

        let report = verify(&rsn);
        let mismatches: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::SelectPathMismatch)
            .collect();
        assert!(!mismatches.is_empty(), "{}", report.render());
        for d in &mismatches {
            let seg = d.node.unwrap();
            let cfg = d.witness.as_ref().expect("witness");
            let on_path = rsn
                .trace_path(cfg)
                .map(|p| p.contains(seg))
                .unwrap_or(false);
            let selected = rsn.select(seg, cfg).unwrap();
            assert_ne!(
                selected, on_path,
                "witness does not reproduce the mismatch for {}",
                d.node_name
            );
        }
    }

    #[test]
    fn dead_mux_input_and_overflow_are_found() {
        // A 3-input mux on 2 address bits where bit1 is tied low: input 2
        // is dead and address 3 (binary 11) is unreachable... tie bit1
        // high instead so address can overflow to 3.
        let mut b = RsnBuilder::new("mux-overflow");
        let i = b.add_inputs(1);
        let s0 = b.add_segment("s0", 1);
        let s1 = b.add_segment("s1", 1);
        let s2 = b.add_segment("s2", 1);
        let m = b.add_mux(
            "m",
            vec![s0, s1, s2],
            vec![ControlExpr::input(i), ControlExpr::input(i)],
        );
        b.connect(b.scan_in(), s0);
        b.connect(b.scan_in(), s1);
        b.connect(b.scan_in(), s2);
        b.connect(m, b.scan_out());
        let rsn = b.finish().unwrap();

        let report = verify(&rsn);
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        // addr = (i, i): reaches 00 and 11 only → inputs 1 and 2 dead at
        // most one alive... actually 00 selects input 0, 11 overflows.
        assert!(
            codes.contains(&Code::MuxAddressOverflow),
            "{}",
            report.render()
        );
        let overflow = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::MuxAddressOverflow)
            .unwrap();
        let cfg = overflow.witness.as_ref().expect("witness");
        assert!(rsn.mux_selected_input(m, cfg).is_err());
        assert!(!report.is_clean());
    }

    #[test]
    fn options_disable_check_families() {
        let rsn = examples::fig2();
        let report = verify_with(
            &rsn,
            VerifyOptions {
                select_checks: false,
                mux_checks: false,
                controllability: false,
                structural: true,
                control_cycles: true,
                solver_threads: 1,
            },
        );
        assert_eq!(report.sat_queries, 0);
        assert!(!report.checks_run.contains(&"selects"));
        assert!(report.checks_run.contains(&"structural"));
    }

    #[test]
    fn zero_budget_marks_every_family_incomplete() {
        let rsn = examples::fig2();
        let budget = Budget::unlimited().with_work_limit(0);
        let report = verify_under(&rsn, VerifyOptions::default(), &budget);
        assert!(!report.is_complete());
        assert!(report.checks_run.is_empty());
        assert_eq!(
            report.incomplete,
            vec![
                "structural",
                "selects",
                "muxes",
                "controllability",
                "control-cycles"
            ]
        );
        // Starved checks never issue SAT queries and never claim findings.
        assert_eq!(report.sat_queries, 0);
        assert!(report.diagnostics.is_empty());
        // The starvation is loud in both renderings: the summary line
        // plus one explicit UNPROVEN marker per starved family.
        assert!(report.render().contains("INCOMPLETE"));
        for fam in &report.incomplete {
            assert!(
                report.render().contains(&format!("UNPROVEN {fam}")),
                "missing UNPROVEN marker for {fam}:\n{}",
                report.render()
            );
        }
        assert!(report
            .to_json()
            .to_string_pretty(0)
            .contains("\"incomplete\""));
    }

    #[test]
    fn partial_budget_keeps_completed_family_results() {
        let rsn = examples::fig2();
        // Two work units: structural and selects run, the rest starve.
        let budget = Budget::unlimited().with_work_limit(2);
        let report = verify_under(&rsn, VerifyOptions::default(), &budget);
        assert_eq!(report.checks_run, vec!["structural", "selects"]);
        assert_eq!(
            report.incomplete,
            vec!["muxes", "controllability", "control-cycles"]
        );
        assert!(report.sat_queries > 0, "the selects family did run");
    }

    #[test]
    fn unlimited_budget_verify_matches_unbudgeted() {
        let rsn = examples::fig2();
        let plain = verify_with(&rsn, VerifyOptions::default());
        let budgeted = verify_under(&rsn, VerifyOptions::default(), &Budget::unlimited());
        assert_eq!(plain, budgeted);
        assert!(budgeted.is_complete());
        assert!(!budgeted.render().contains("INCOMPLETE"));
    }

    #[test]
    fn verify_on_shared_model_matches_owned_build() {
        let rsn = examples::fig2();
        let sat = NetworkSat::build(&rsn);
        let owned = verify(&rsn);
        // Two calls against the same shared model: each gets a private
        // scratch, so both match the owned-build report exactly.
        for _ in 0..2 {
            let shared = verify_on(&rsn, &sat, VerifyOptions::default(), &Budget::unlimited());
            assert_eq!(owned, shared);
        }
    }

    #[test]
    fn report_json_has_stable_shape() {
        let rsn = examples::fig2();
        let report = verify(&rsn);
        let json = report.to_json().to_string_pretty(0);
        assert!(json.contains("\"network\""));
        assert!(json.contains("\"diagnostics\""));
        assert!(json.contains("\"sat_queries\""));
    }

    #[test]
    fn verify_findings_superset_of_sampled_lint() {
        for rsn in [
            examples::fig2(),
            examples::chain(3, 5),
            examples::sib_tree(2, 3, 4),
        ] {
            let report = verify(&rsn);
            let proved = report.to_lint_warnings();
            for w in rsn.lint(64) {
                assert!(
                    proved.iter().any(|p| same_finding(p, &w)),
                    "{}: lint found {w:?} but verify did not",
                    rsn.name()
                );
            }
        }
    }

    /// Same (code, node) finding, ignoring witness configs (the solver's
    /// witness need not equal the sampled one).
    fn same_finding(a: &rsn_core::LintWarning, b: &rsn_core::LintWarning) -> bool {
        use rsn_core::LintWarning as W;
        match (a, b) {
            (
                W::SelectPathMismatch { segment: x, .. },
                W::SelectPathMismatch { segment: y, .. },
            ) => x == y,
            _ => a == b,
        }
    }
}
