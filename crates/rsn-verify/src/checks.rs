//! The check catalog: graph-theoretic passes and SAT-proven properties.
//!
//! Every check here is exhaustive — either a reachability/SCC argument
//! over the dataflow graph or a satisfiability proof over *all*
//! configurations. Nothing samples.

use std::collections::BTreeMap;

use rsn_core::{structural_findings, NodeId, NodeKind, Rsn};
use rsn_graph::DiGraph;

use crate::diag::{Code, Diagnostic};
use crate::encode::{NetworkSat, SatScratch};

/// Structural passes shared with the legacy lint: reachability in both
/// directions (`RSN007`, `RSN008`) and shadow-less address sources
/// (`RSN006`).
pub(crate) fn structural(rsn: &Rsn) -> Vec<Diagnostic> {
    let f = structural_findings(rsn);
    let mut out = Vec::new();
    for &n in &f.unreachable {
        out.push(Diagnostic::new(
            Code::UnreachableFromScanIn,
            rsn,
            n,
            "node is unreachable from any scan-in port",
        ));
    }
    for &n in &f.unobservable {
        out.push(Diagnostic::new(
            Code::CannotReachScanOut,
            rsn,
            n,
            "no scan-out port is reachable from the node",
        ));
    }
    for &(mux, register) in &f.shadowless_addresses {
        out.push(
            Diagnostic::new(
                Code::AddressWithoutShadow,
                rsn,
                mux,
                format!(
                    "mux address reads register {} ({}) which has no shadow",
                    register,
                    rsn.node(register).name()
                ),
            )
            .with_related(vec![register]),
        );
    }
    out
}

/// Select checks (`RSN002`, `RSN001`): for every segment, prove that the
/// select predicate is satisfiable and that it agrees with active-path
/// membership in *every* configuration, or extract a witness.
pub(crate) fn select_checks(rsn: &Rsn, sat: &NetworkSat, scr: &mut SatScratch) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for s in rsn.segments() {
        let sel = sat.select(s);
        if !sat.satisfiable(scr, &[sel]) {
            out.push(Diagnostic::new(
                Code::NeverSelected,
                rsn,
                s,
                "select predicate is unsatisfiable: the segment can never be selected",
            ));
        }
        let mismatch = sat.select_mismatch(s);
        if let Some(witness) = sat.witness(rsn, scr, &[mismatch]) {
            out.push(
                Diagnostic::new(
                    Code::SelectPathMismatch,
                    rsn,
                    s,
                    "a configuration exists where the select predicate disagrees \
                     with active-scan-path membership",
                )
                .with_witness(witness),
            );
        }
    }
    out
}

/// Multiplexer checks (`RSN003`, `RSN004`, `RSN005`): per input, prove
/// selectability; per mux, prove the decoded address stays in range.
pub(crate) fn mux_checks(rsn: &Rsn, sat: &NetworkSat, scr: &mut SatScratch) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for m in rsn.muxes() {
        let mux = rsn.node(m).as_mux().expect("mux");
        let n_inputs = mux.inputs.len();
        let mut alive = Vec::with_capacity(n_inputs);
        for k in 0..n_inputs {
            let c = sat.mux_cond(m, k);
            alive.push(sat.satisfiable(scr, &[c]));
        }
        let alive_count = alive.iter().filter(|&&a| a).count();
        if alive_count <= 1 {
            out.push(Diagnostic::new(
                Code::MuxNeverSwitches,
                rsn,
                m,
                format!(
                    "at most one of {n_inputs} inputs is ever selectable: \
                     the multiplexer never switches"
                ),
            ));
        } else {
            for (k, &a) in alive.iter().enumerate() {
                if !a {
                    out.push(
                        Diagnostic::new(
                            Code::DeadMuxInput,
                            rsn,
                            m,
                            format!(
                                "input {k} (driven by {}) is never selectable",
                                rsn.node(mux.inputs[k]).name()
                            ),
                        )
                        .with_related(vec![mux.inputs[k]]),
                    );
                }
            }
        }
        if let Some(overflow) = sat.addr_overflow(m) {
            if let Some(witness) = sat.witness(rsn, scr, &[overflow]) {
                out.push(
                    Diagnostic::new(
                        Code::MuxAddressOverflow,
                        rsn,
                        m,
                        format!(
                            "a configuration decodes an address beyond the \
                             {n_inputs} inputs"
                        ),
                    )
                    .with_witness(witness),
                );
            }
        }
    }
    out
}

/// Shadow-controllability (`RSN010`): every register whose bits feed
/// control logic must be placeable on a scan path, otherwise the control
/// state is stuck at its reset value forever.
pub(crate) fn controllability(
    rsn: &Rsn,
    sat: &NetworkSat,
    scr: &mut SatScratch,
) -> Vec<Diagnostic> {
    let consumers = control_consumers(rsn);
    let mut out = Vec::new();
    for (reg, users) in consumers {
        if rsn.shadow_offset(reg).is_none() {
            continue; // reported as RSN006 by the structural pass
        }
        let on = sat.onpath(reg);
        if !sat.satisfiable(scr, &[on]) {
            out.push(
                Diagnostic::new(
                    Code::UncontrollableControlRegister,
                    rsn,
                    reg,
                    format!(
                        "shadow register drives control logic of {} node(s) but can \
                         never lie on a scan path: its bits are stuck at reset",
                        users.len()
                    ),
                )
                .with_related(users),
            );
        }
    }
    out
}

/// Control-dependency cycles (`RSN009`): SCCs of the graph with an edge
/// `owner → consumer` whenever a consumer's control expression reads the
/// owner's shadow register. Self-loops are excluded — a segment gating
/// itself is idiomatic (SIB-style) and routing bits of the synthesis
/// live in the segment they steer.
pub(crate) fn control_cycles(rsn: &Rsn) -> Vec<Diagnostic> {
    let n = rsn.node_count();
    let mut g = DiGraph::new(n);
    for (owner, users) in control_consumers(rsn) {
        for u in users {
            if u != owner {
                g.add_edge(owner.index(), u.index());
            }
        }
    }
    let mut out = Vec::new();
    for comp in g.cyclic_components() {
        let members: Vec<NodeId> = comp.iter().map(|&v| NodeId(v as u32)).collect();
        let names: Vec<&str> = members.iter().map(|&m| rsn.node(m).name()).collect();
        out.push(
            Diagnostic::new(
                Code::ControlDependencyCycle,
                rsn,
                members[0],
                format!(
                    "cyclic control dependency between {{{}}}: no update order \
                     can change these registers independently",
                    names.join(", ")
                ),
            )
            .with_related(members),
        );
    }
    out
}

/// `register → nodes whose control expressions read it`, deterministic
/// order, deduplicated.
fn control_consumers(rsn: &Rsn) -> BTreeMap<NodeId, Vec<NodeId>> {
    let mut map: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    let mut refs = Vec::new();
    for id in rsn.node_ids() {
        refs.clear();
        match rsn.node(id).kind() {
            NodeKind::Segment(s) => {
                s.select.collect_reg_refs(&mut refs);
                s.capture_disable.collect_reg_refs(&mut refs);
                s.update_disable.collect_reg_refs(&mut refs);
            }
            NodeKind::Mux(m) => {
                for e in &m.addr_bits {
                    e.collect_reg_refs(&mut refs);
                }
            }
            _ => {}
        }
        for &(reg, _) in refs.iter() {
            let users = map.entry(reg).or_default();
            if users.last() != Some(&id) {
                users.push(id);
            }
        }
    }
    map
}
