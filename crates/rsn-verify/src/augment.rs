//! Ineffective-augmentation check (`RSN011`): an edge added by the
//! fault-tolerance synthesis earns its keep only if it raises the number
//! of vertex-independent paths somewhere — from the root to a vertex or
//! from a vertex to the sink. The check is exact: path counts are
//! computed by max-flow with vertex splitting, with the candidate edge
//! present and removed.

use rsn_graph::{vertex_independent_paths, DiGraph};

/// An augmentation edge that does not increase any vertex-independent
/// path count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IneffectiveEdge {
    /// Index into the `added` slice passed to [`ineffective_augmentation`].
    pub index: usize,
    /// The edge itself, as dataflow vertex indices.
    pub edge: (usize, usize),
}

/// Returns the augmentation edges of `added` that change no
/// vertex-independent path count `root → v` or `v → sink` for any vertex
/// `v` of `graph`. `graph` must already contain all the added edges.
///
/// A duplicate of an existing edge is always ineffective: vertex-disjoint
/// paths cannot use two parallel edges, so the counts cannot move.
pub fn ineffective_augmentation(
    graph: &DiGraph,
    added: &[(usize, usize)],
    root: usize,
    sink: usize,
) -> Vec<IneffectiveEdge> {
    let n = graph.len();
    if n == 0 || added.is_empty() {
        return Vec::new();
    }

    // Path counts with every edge present, computed once.
    let from_root: Vec<i64> = (0..n)
        .map(|v| vertex_independent_paths(graph, root, v))
        .collect();
    let to_sink: Vec<i64> = (0..n)
        .map(|v| vertex_independent_paths(graph, v, sink))
        .collect();

    let mut out = Vec::new();
    for (index, &(a, b)) in added.iter().enumerate() {
        let reduced = remove_one_edge(graph, a, b);
        // A parallel duplicate survives as an identical edge: it shares
        // both endpoints with the original, so it cannot add tolerance
        // against any vertex fault. (The raw path count *does* move for
        // the endpoints themselves — two adjacent vertices have no
        // internal vertex to collide on — hence the explicit case.)
        if reduced.has_edge(a, b) {
            out.push(IneffectiveEdge {
                index,
                edge: (a, b),
            });
            continue;
        }
        // Removing a → b can only affect `root → v` counts for v reachable
        // from b, and `v → sink` counts for v reaching a.
        let affected_fwd = reduced.reachable_from(b);
        let affected_bwd = reduced.reaching(a);
        let mut effective = false;
        for v in 0..n {
            if (affected_fwd[v] || v == b)
                && vertex_independent_paths(&reduced, root, v) != from_root[v]
            {
                effective = true;
                break;
            }
            if (affected_bwd[v] || v == a)
                && vertex_independent_paths(&reduced, v, sink) != to_sink[v]
            {
                effective = true;
                break;
            }
        }
        if !effective {
            out.push(IneffectiveEdge {
                index,
                edge: (a, b),
            });
        }
    }
    out
}

/// A copy of `graph` with one copy of the edge `a → b` removed.
fn remove_one_edge(graph: &DiGraph, a: usize, b: usize) -> DiGraph {
    let mut g = DiGraph::new(graph.len());
    let mut skipped = false;
    for (u, v) in graph.edges() {
        if !skipped && u == a && v == b {
            skipped = true;
            continue;
        }
        g.add_edge(u, v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_duplicate_edge_is_ineffective() {
        // 0 → 1 → 2 plus a duplicate 1 → 2.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (1, 2)]);
        let found = ineffective_augmentation(&g, &[(1, 2)], 0, 2);
        assert_eq!(
            found,
            vec![IneffectiveEdge {
                index: 0,
                edge: (1, 2)
            }]
        );
    }

    #[test]
    fn bypass_edge_is_effective() {
        // Chain 0 → 1 → 2 → 3 augmented with the bypass 0 → 2: two
        // vertex-independent paths now reach vertex 2.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let found = ineffective_augmentation(&g, &[(0, 2)], 0, 3);
        assert!(found.is_empty());
    }

    #[test]
    fn mixed_added_edges_are_classified_individually() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2), (1, 2)]);
        let found = ineffective_augmentation(&g, &[(0, 2), (1, 2)], 0, 3);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].edge, (1, 2));
    }
}
