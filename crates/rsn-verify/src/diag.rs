//! Structured diagnostics: stable error codes, severities, provenance and
//! witness configurations, rendered both human-readable and as `rsn-obs`
//! JSON.

use std::fmt;

use rsn_core::{Config, LintWarning, NodeId, Rsn};
use rsn_obs::json::Json;

use crate::explain::Explanation;

/// Severity of a diagnostic.
///
/// `Error` findings violate the RSN validity contract (a configuration
/// exists that breaks select/path agreement, decodes an out-of-range mux
/// address, or control state can never be written); `Warning` findings
/// indicate dead or wasted structure; `Info` findings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note.
    Info,
    /// Dead or wasted structure; the network still behaves validly.
    Warning,
    /// A violation of the validity contract.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes of the check catalog.
///
/// Codes are append-only: a code, once published, never changes meaning.
/// The catalog (with encodings) is documented in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Code {
    /// `RSN001` — a configuration exists where a segment's select
    /// predicate disagrees with active-scan-path membership (SAT, with
    /// witness).
    SelectPathMismatch,
    /// `RSN002` — a segment's select predicate is unsatisfiable: the
    /// segment can never be selected (SAT proof).
    NeverSelected,
    /// `RSN003` — at most one input of a multiplexer is ever selectable:
    /// the mux never switches (SAT proof per input condition).
    MuxNeverSwitches,
    /// `RSN004` — a specific multiplexer input is never selectable while
    /// others are (SAT proof).
    DeadMuxInput,
    /// `RSN005` — a configuration exists that decodes a multiplexer
    /// address beyond the input count (SAT, with witness).
    MuxAddressOverflow,
    /// `RSN006` — a multiplexer address reads a register that has no
    /// shadow (structural).
    AddressWithoutShadow,
    /// `RSN007` — a node is unreachable from every scan-in port
    /// (graph reachability).
    UnreachableFromScanIn,
    /// `RSN008` — no scan-out port is reachable from a node
    /// (graph reachability).
    CannotReachScanOut,
    /// `RSN009` — a cyclic control dependency between the shadow
    /// registers of two or more segments (SCC over the control-dependency
    /// graph; idiomatic SIB-style self-gating is excluded).
    ControlDependencyCycle,
    /// `RSN010` — a shadow register drives control logic but can never
    /// lie on any scan path, so its bits are stuck at reset (SAT proof).
    UncontrollableControlRegister,
    /// `RSN011` — an augmentation edge does not increase any
    /// vertex-independent path count (max-flow proof).
    IneffectiveAugmentation,
}

impl Code {
    /// The stable `RSN0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::SelectPathMismatch => "RSN001",
            Code::NeverSelected => "RSN002",
            Code::MuxNeverSwitches => "RSN003",
            Code::DeadMuxInput => "RSN004",
            Code::MuxAddressOverflow => "RSN005",
            Code::AddressWithoutShadow => "RSN006",
            Code::UnreachableFromScanIn => "RSN007",
            Code::CannotReachScanOut => "RSN008",
            Code::ControlDependencyCycle => "RSN009",
            Code::UncontrollableControlRegister => "RSN010",
            Code::IneffectiveAugmentation => "RSN011",
        }
    }

    /// The severity associated with the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::SelectPathMismatch
            | Code::MuxAddressOverflow
            | Code::UncontrollableControlRegister => Severity::Error,
            Code::NeverSelected
            | Code::MuxNeverSwitches
            | Code::DeadMuxInput
            | Code::AddressWithoutShadow
            | Code::UnreachableFromScanIn
            | Code::CannotReachScanOut
            | Code::ControlDependencyCycle
            | Code::IneffectiveAugmentation => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verified finding: stable code, severity, node provenance, message
/// and (for SAT-derived existence findings) a witness configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable catalog code.
    pub code: Code,
    /// Severity, defaulting to [`Code::severity`].
    pub severity: Severity,
    /// The primary node the finding is about, if any.
    pub node: Option<NodeId>,
    /// Name of the primary node (provenance survives serialization).
    pub node_name: String,
    /// Related nodes (the register of a shadow-less address, the members
    /// of a control cycle, ...).
    pub related: Vec<NodeId>,
    /// Human-readable explanation.
    pub message: String,
    /// A configuration reproducing the finding through the simulator,
    /// extracted from the SAT model (existence findings only).
    pub witness: Option<Config>,
    /// Root-cause explanation (minimal structural cut, forcing control
    /// bits, repair hints), attached by
    /// [`explain_report`](crate::explain_report).
    pub explanation: Option<Explanation>,
}

impl Diagnostic {
    /// Creates a diagnostic for `node` with the code's default severity.
    pub fn new(code: Code, rsn: &Rsn, node: NodeId, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            node: Some(node),
            node_name: rsn.node(node).name().to_string(),
            related: Vec::new(),
            message: message.into(),
            witness: None,
            explanation: None,
        }
    }

    /// Attaches a witness configuration.
    pub fn with_witness(mut self, witness: Config) -> Diagnostic {
        self.witness = Some(witness);
        self
    }

    /// Attaches related nodes.
    pub fn with_related(mut self, related: Vec<NodeId>) -> Diagnostic {
        self.related = related;
        self
    }

    /// Serializes to an `rsn-obs` JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("code", Json::Str(self.code.as_str().into()));
        obj.set("severity", Json::Str(self.severity.to_string()));
        if let Some(n) = self.node {
            obj.set("node", Json::Num(n.0 as f64));
            obj.set("node_name", Json::Str(self.node_name.clone()));
        }
        if !self.related.is_empty() {
            obj.set(
                "related",
                Json::Arr(self.related.iter().map(|n| Json::Num(n.0 as f64)).collect()),
            );
        }
        obj.set("message", Json::Str(self.message.clone()));
        if let Some(w) = &self.witness {
            obj.set(
                "witness",
                Json::Str(
                    w.as_bits()
                        .iter()
                        .map(|&b| if b { '1' } else { '0' })
                        .collect(),
                ),
            );
        }
        if let Some(e) = &self.explanation {
            obj.set("explanation", e.to_json());
        }
        obj
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if self.node.is_some() {
            write!(f, " {}", self.node_name)?;
        }
        write!(f, ": {}", self.message)?;
        if self.witness.is_some() {
            write!(f, " (witness configuration attached)")?;
        }
        Ok(())
    }
}

/// The result of one verification run: all diagnostics plus run
/// statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Name of the verified network.
    pub network: String,
    /// Node count of the verified network.
    pub nodes: usize,
    /// All findings, ordered by check then node.
    pub diagnostics: Vec<Diagnostic>,
    /// Checks that ran (stable names, see DESIGN.md).
    pub checks_run: Vec<&'static str>,
    /// Checks that were requested but starved by a resource budget; their
    /// properties are *unproven*, not passed (stable names, as in
    /// [`VerifyReport::checks_run`]).
    pub incomplete: Vec<&'static str>,
    /// Number of SAT queries issued.
    pub sat_queries: usize,
}

impl VerifyReport {
    /// Findings of exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.with_severity(Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.with_severity(Severity::Warning).count()
    }

    /// `true` if no error-severity finding was made.
    ///
    /// A clean but [incomplete](VerifyReport::is_complete) report is *not*
    /// a proof: starved check families were never run.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` if every requested check family actually ran (none was
    /// starved by a resource budget).
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_empty()
    }

    /// Renders the report for terminals: one line per diagnostic (plus
    /// an indented root-cause block when an explanation is attached), a
    /// summary line, and one explicit `UNPROVEN` marker per starved
    /// check family.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
            if let Some(e) = &d.explanation {
                for line in e.render_lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s) across {} check(s), {} SAT queries",
            self.network,
            self.error_count(),
            self.warning_count(),
            self.checks_run.len(),
            self.sat_queries,
        );
        for fam in &self.incomplete {
            let _ = writeln!(
                out,
                "UNPROVEN {fam}: budget exhausted before this check family ran",
            );
        }
        if !self.incomplete.is_empty() {
            let _ = writeln!(
                out,
                "INCOMPLETE: budget exhausted before {} — unproven, not passed",
                self.incomplete.join(", "),
            );
        }
        out
    }

    /// Serializes the report to an `rsn-obs` JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("network", Json::Str(self.network.clone()));
        obj.set("nodes", Json::Num(self.nodes as f64));
        obj.set("errors", Json::Num(self.error_count() as f64));
        obj.set("warnings", Json::Num(self.warning_count() as f64));
        obj.set("sat_queries", Json::Num(self.sat_queries as f64));
        obj.set(
            "checks",
            Json::Arr(
                self.checks_run
                    .iter()
                    .map(|c| Json::Str((*c).into()))
                    .collect(),
            ),
        );
        if !self.incomplete.is_empty() {
            obj.set(
                "incomplete",
                Json::Arr(
                    self.incomplete
                        .iter()
                        .map(|c| Json::Str((*c).into()))
                        .collect(),
                ),
            );
        }
        obj.set(
            "diagnostics",
            Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
        );
        obj
    }

    /// Maps the diagnostics onto the legacy [`LintWarning`] vocabulary
    /// (findings without a legacy equivalent are dropped).
    pub fn to_lint_warnings(&self) -> Vec<LintWarning> {
        let mut out = Vec::new();
        for d in &self.diagnostics {
            let Some(node) = d.node else { continue };
            match d.code {
                Code::SelectPathMismatch => {
                    if let Some(config) = d.witness.clone() {
                        out.push(LintWarning::SelectPathMismatch {
                            segment: node,
                            config,
                        });
                    }
                }
                Code::NeverSelected => out.push(LintWarning::NeverSelected(node)),
                Code::MuxNeverSwitches => out.push(LintWarning::MuxNeverSwitches(node)),
                Code::AddressWithoutShadow => {
                    if let Some(&register) = d.related.first() {
                        out.push(LintWarning::AddressWithoutShadow {
                            mux: node,
                            register,
                        });
                    }
                }
                Code::UnreachableFromScanIn => {
                    out.push(LintWarning::UnreachableFromScanIn(node));
                }
                Code::CannotReachScanOut => out.push(LintWarning::CannotReachScanOut(node)),
                _ => {}
            }
        }
        out
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}
