//! Cone-of-influence slicing over the dataflow adjacency.
//!
//! The SAT encoding of a node's on-path membership depends on (a) every
//! downstream node on some successor chain to a scan-out and (b) the
//! control expressions — select predicates and mux address bits — of the
//! nodes traversed, which in turn read shadow registers elsewhere in the
//! network. The cone computed here is exactly that closure: the set of
//! nodes whose encoding can appear in an UNSAT core for a query rooted
//! at the given nodes. Explanations report its size and use it to scope
//! narratives.

use rsn_core::{NodeId, NodeKind, Rsn};

/// The cone of influence of `roots`: all nodes reachable by alternating
/// dataflow-successor steps and control-read steps (a node's select or
/// mux address reading a shadow register pulls the owning register into
/// the cone). Returned in ascending node-id order.
pub fn cone_of_influence(rsn: &Rsn, roots: &[NodeId]) -> Vec<NodeId> {
    let mut seen = vec![false; rsn.node_count()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &r in roots {
        if !seen[r.index()] {
            seen[r.index()] = true;
            stack.push(r);
        }
    }
    let mut refs = Vec::new();
    while let Some(v) = stack.pop() {
        for &w in rsn.successors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
        refs.clear();
        match rsn.node(v).kind() {
            NodeKind::Segment(s) => s.select.collect_reg_refs(&mut refs),
            NodeKind::Mux(m) => {
                for e in &m.addr_bits {
                    e.collect_reg_refs(&mut refs);
                }
            }
            _ => {}
        }
        for &(reg, _) in refs.iter() {
            if !seen[reg.index()] {
                seen[reg.index()] = true;
                stack.push(reg);
            }
        }
    }
    (0..rsn.node_count() as u32)
        .map(NodeId)
        .filter(|n| seen[n.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::{ControlExpr, RsnBuilder};

    #[test]
    fn cone_follows_dataflow_and_control_reads() {
        // si → ctl → s0 → so, with s0's select reading ctl's shadow.
        let mut b = RsnBuilder::new("cone");
        let ctl = b.add_segment("ctl", 2);
        let s0 = b.add_segment("s0", 4);
        b.set_select(ctl, ControlExpr::TRUE);
        b.set_select(s0, ControlExpr::reg(ctl, 0));
        let si = b.scan_in();
        let so = b.scan_out();
        b.connect(si, ctl);
        b.connect(ctl, s0);
        b.connect(s0, so);
        let rsn = b.finish().expect("valid network");

        // From s0 the cone is {s0, so} plus ctl via the select read.
        let cone = cone_of_influence(&rsn, &[s0]);
        assert!(cone.contains(&s0) && cone.contains(&so) && cone.contains(&ctl));
        assert!(!cone.contains(&si), "scan-in is upstream only");
        // From so the cone is just {so}.
        assert_eq!(cone_of_influence(&rsn, &[so]), vec![so]);
    }
}
