//! Root-cause explanation engine: maps failing diagnostics back to
//! minimal structural cuts and forcing control bits.
//!
//! Two proof shapes cover the SAT-backed catalog:
//!
//! * **Existence findings** (`RSN001`, `RSN005` — "a bad configuration
//!   exists"): the witness configuration is generalized into a *minimal
//!   forcing cube* by asking why `F ∧ witness ∧ ¬finding` is
//!   unsatisfiable — the failed-assumption core over the state bits is
//!   exactly the subset of control bits that already forces the finding.
//!   Cubes are enumerated (each found cube is blocked, then the query is
//!   re-solved) until the finding becomes unsatisfiable, so the cube set
//!   *covers* every failing configuration: fixing all listed bits
//!   provably eliminates the diagnostic.
//! * **Universality findings** (`RSN002`, `RSN003`, `RSN004`, `RSN010` —
//!   "no good configuration exists"): the formula is re-assembled with
//!   one guard literal per structural clause group (select predicate,
//!   mux address, decode port, on-path gate) from the provenance table
//!   recorded by [`NetworkSat::build`]. The failed-assumption core over
//!   the guards, minimized by deletion, names the structural elements
//!   whose removal makes the property satisfiable — a minimal cut.
//!
//! Graph-derived findings (`RSN006`–`RSN009`, `RSN011`) get structural
//! explanations from their related nodes and cone. Every step is
//! budget-aware: exhaustion degrades to unminimized cores or structural
//! fallbacks, never hangs.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

use rsn_budget::Budget;
use rsn_core::{NodeId, NodeKind, Rsn};
use rsn_obs::json::Json;
use rsn_sat::{Lit, SolveOutcome, Solver};

use crate::cone::cone_of_influence;
use crate::diag::{Code, Diagnostic, VerifyReport};
use crate::encode::{ClauseOrigin, NetworkSat};

/// Cap on enumerated forcing cubes per finding; beyond it the
/// explanation is marked incomplete.
const MAX_CUBES: usize = 64;

/// One forced control bit of a forcing cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlBitFix {
    /// Owning shadow register and register-local bit, for shadow bits.
    pub register: Option<(NodeId, u32)>,
    /// Global config-bit index (shadow bits only).
    pub bit: Option<usize>,
    /// Primary-input index (primary inputs only).
    pub input: Option<u32>,
    /// Display label, e.g. `CTL[1]` or `in0`.
    pub label: String,
    /// The value the bit must take to force (or avoid) the finding.
    pub value: bool,
}

impl ControlBitFix {
    fn render(&self) -> String {
        format!("{}={}", self.label, self.value as u8)
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("label", Json::Str(self.label.clone()));
        obj.set("value", Json::Bool(self.value));
        if let Some((reg, b)) = self.register {
            obj.set("register", Json::Num(reg.0 as f64));
            obj.set("register_bit", Json::Num(b as f64));
        }
        if let Some(i) = self.bit {
            obj.set("bit", Json::Num(i as f64));
        }
        if let Some(i) = self.input {
            obj.set("input", Json::Num(i as f64));
        }
        obj
    }
}

/// The kind of repair a hint suggests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairAction {
    /// Harden the mux (feeds `rsn-synth`'s `harden_budget` machinery).
    HardenMux,
    /// Revise the segment's select predicate.
    ReviseSelect,
    /// Give the register a shadow so its state becomes writable.
    AddShadow,
    /// Connect the node to the scan fabric.
    ConnectNode,
    /// Break the control-dependency cycle.
    BreakCycle,
    /// Drop the ineffective augmentation edge.
    RemoveAugmentation,
}

/// A concrete repair suggestion derived from the cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairHint {
    /// What to do.
    pub action: RepairAction,
    /// The node to do it to, when the action has a single target.
    pub target: Option<NodeId>,
    /// Rendered suggestion, e.g. `harden mux M4`.
    pub text: String,
}

/// Root cause of one diagnostic: the minimal structural cut and/or the
/// forcing control bits, with provenance-backed narrative and repair
/// hints.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Nodes implicated by the cut (owning segments/muxes/registers of
    /// core clause groups, or the forcing registers of a cube).
    pub cut_nodes: Vec<NodeId>,
    /// Dataflow edges implicated by the cut (`input → mux` for core
    /// decode ports, witness-steered edges for cube findings).
    pub cut_edges: Vec<(NodeId, NodeId)>,
    /// Primary forcing cube (existence findings): control-bit values
    /// that already force the finding.
    pub control_bits: Vec<ControlBitFix>,
    /// Remaining enumerated forcing cubes; together with
    /// [`control_bits`](Explanation::control_bits) they cover every
    /// failing configuration when [`complete`](Explanation::complete).
    pub other_cubes: Vec<Vec<ControlBitFix>>,
    /// Minimal structural core (universality findings): the clause
    /// groups whose removal makes the property satisfiable.
    pub core: Vec<ClauseOrigin>,
    /// Size of the cone of influence the finding lives in.
    pub cone_nodes: usize,
    /// Members in the minimized core (cube length for existence
    /// findings, group count for universality findings).
    pub core_size: usize,
    /// Whether deletion-based minimization completed (budget permitting);
    /// an unminimized core is still valid, just possibly larger.
    pub minimized: bool,
    /// Whether the explanation is exhaustive (every failing
    /// configuration covered / the core fully extracted). Budget
    /// exhaustion and the cube cap clear this.
    pub complete: bool,
    /// Human-readable root-cause statement with node names.
    pub narrative: String,
    /// Repair suggestions derived from the cut.
    pub hints: Vec<RepairHint>,
}

impl Explanation {
    /// Muxes the hints suggest hardening — ready to feed
    /// `rsn-synth`'s `SynthesisOptions::harden_budget` flow.
    pub fn harden_targets(&self) -> Vec<NodeId> {
        self.hints
            .iter()
            .filter(|h| h.action == RepairAction::HardenMux)
            .filter_map(|h| h.target)
            .collect()
    }

    /// Indented terminal rendering, one line per element.
    pub fn render_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!("root cause: {}", self.narrative));
        if !self.control_bits.is_empty() {
            let force: Vec<String> = self.control_bits.iter().map(|f| f.render()).collect();
            let extra = if self.other_cubes.is_empty() {
                String::new()
            } else {
                format!(" (+{} more cube(s))", self.other_cubes.len())
            };
            out.push(format!("force: {}{}", force.join(", "), extra));
        }
        let mut stats = format!(
            "cone {} node(s); core {}{}",
            self.cone_nodes,
            self.core_size,
            if self.minimized { ", minimal" } else { "" }
        );
        if !self.complete {
            stats.push_str("; partial");
        }
        out.push(stats);
        for h in &self.hints {
            out.push(format!("hint: {}", h.text));
        }
        out
    }

    /// Serializes to an `rsn-obs` JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set(
            "cut_nodes",
            Json::Arr(
                self.cut_nodes
                    .iter()
                    .map(|n| Json::Num(n.0 as f64))
                    .collect(),
            ),
        );
        obj.set(
            "cut_edges",
            Json::Arr(
                self.cut_edges
                    .iter()
                    .map(|&(a, b)| Json::Arr(vec![Json::Num(a.0 as f64), Json::Num(b.0 as f64)]))
                    .collect(),
            ),
        );
        obj.set(
            "control_bits",
            Json::Arr(self.control_bits.iter().map(|f| f.to_json()).collect()),
        );
        if !self.other_cubes.is_empty() {
            obj.set(
                "other_cubes",
                Json::Arr(
                    self.other_cubes
                        .iter()
                        .map(|c| Json::Arr(c.iter().map(|f| f.to_json()).collect()))
                        .collect(),
                ),
            );
        }
        if !self.core.is_empty() {
            obj.set(
                "core",
                Json::Arr(
                    self.core
                        .iter()
                        .map(|o| Json::Str(origin_key(*o)))
                        .collect(),
                ),
            );
        }
        obj.set("cone_nodes", Json::Num(self.cone_nodes as f64));
        obj.set("core_size", Json::Num(self.core_size as f64));
        obj.set("minimized", Json::Bool(self.minimized));
        obj.set("complete", Json::Bool(self.complete));
        obj.set("narrative", Json::Str(self.narrative.clone()));
        obj.set(
            "hints",
            Json::Arr(
                self.hints
                    .iter()
                    .map(|h| Json::Str(h.text.clone()))
                    .collect(),
            ),
        );
        obj
    }
}

/// Stable string key of a clause origin, e.g. `select:3` or
/// `mux_port:6:2`.
fn origin_key(o: ClauseOrigin) -> String {
    match o {
        ClauseOrigin::Base => "base".into(),
        ClauseOrigin::Select(n) => format!("select:{}", n.0),
        ClauseOrigin::MuxAddr(n) => format!("mux_addr:{}", n.0),
        ClauseOrigin::MuxPort(n, k) => format!("mux_port:{}:{k}", n.0),
        ClauseOrigin::OnPath(n) => format!("onpath:{}", n.0),
        ClauseOrigin::Mismatch(n) => format!("mismatch:{}", n.0),
        ClauseOrigin::Overflow(n) => format!("overflow:{}", n.0),
    }
}

/// Human label of a clause origin, with node names.
fn origin_label(rsn: &Rsn, o: ClauseOrigin) -> String {
    let name = |n: NodeId| rsn.node(n).name().to_string();
    match o {
        ClauseOrigin::Base => "constants".into(),
        ClauseOrigin::Select(n) => format!("select of {}", name(n)),
        ClauseOrigin::MuxAddr(n) => format!("address of {}", name(n)),
        ClauseOrigin::MuxPort(n, k) => {
            let fed = rsn
                .node(n)
                .as_mux()
                .and_then(|m| m.inputs.get(k).copied())
                .map(|i| format!(" (fed by {})", name(i)))
                .unwrap_or_default();
            format!("port {k} of {}{fed}", name(n))
        }
        ClauseOrigin::OnPath(n) => format!("path membership of {}", name(n)),
        ClauseOrigin::Mismatch(n) => format!("mismatch gate of {}", name(n)),
        ClauseOrigin::Overflow(n) => format!("overflow gate of {}", name(n)),
    }
}

/// `global config bit → (owning register, register-local bit)`.
fn bit_owners(rsn: &Rsn) -> Vec<Option<(NodeId, u32)>> {
    let mut owners = vec![None; rsn.shadow_bits() as usize];
    for n in rsn.node_ids() {
        if let Some(off) = rsn.shadow_offset(n) {
            for b in 0..rsn.shadow_len(n) {
                owners[(off + b) as usize] = Some((n, b));
            }
        }
    }
    owners
}

/// The guarded re-assembly of a [`NetworkSat`] model: every structural
/// clause group gets an activation guard; cores over the guards name
/// structural cuts. Built once per report and shared by every
/// universality finding.
struct GuardedModel {
    solver: Solver,
    /// Deterministically ordered `(group, guard literal)` pairs.
    guards: Vec<(ClauseOrigin, Lit)>,
    /// Reverse lookup: guard literal code → index into `guards`.
    by_code: HashMap<usize, usize>,
}

/// Whether clauses of this origin are guarded (cuttable structure) or
/// added hard (infrastructure and query definitions).
fn guard_group(origin: ClauseOrigin) -> Option<ClauseOrigin> {
    match origin {
        ClauseOrigin::Select(_)
        | ClauseOrigin::MuxAddr(_)
        | ClauseOrigin::MuxPort(_, _)
        | ClauseOrigin::OnPath(_) => Some(origin),
        ClauseOrigin::Base | ClauseOrigin::Mismatch(_) | ClauseOrigin::Overflow(_) => None,
    }
}

impl GuardedModel {
    fn build(sat: &NetworkSat) -> GuardedModel {
        let mut solver = Solver::new();
        for _ in 0..sat.model_vars() {
            solver.new_var();
        }
        let mut map: BTreeMap<ClauseOrigin, Lit> = BTreeMap::new();
        let mut buf: Vec<Lit> = Vec::new();
        for (lits, origin) in sat.recorded_clauses() {
            match guard_group(origin) {
                None => {
                    solver.add_clause(lits.iter().copied());
                }
                Some(key) => {
                    let g = *map.entry(key).or_insert_with(|| Lit::pos(solver.new_var()));
                    buf.clear();
                    buf.extend_from_slice(lits);
                    buf.push(!g);
                    solver.add_clause(buf.iter().copied());
                }
            }
        }
        let guards: Vec<(ClauseOrigin, Lit)> = map.into_iter().collect();
        let by_code = guards
            .iter()
            .enumerate()
            .map(|(i, &(_, g))| (g.code(), i))
            .collect();
        GuardedModel {
            solver,
            guards,
            by_code,
        }
    }

    /// Solves `query` with every guard asserted except `disabled`
    /// groups; on unsat, extracts and shrinks the core and maps it back
    /// to clause groups.
    ///
    /// With `protect_onpath` the path-membership definition groups are
    /// treated as hard (assumed but never part of the cut): a query over
    /// an `onpath` gate would otherwise minimize to its own definition —
    /// sound but vacuous. Protecting them forces the core onto the
    /// steering logic (selects, addresses, decode ports) instead.
    fn core_groups(
        &mut self,
        query: &[Lit],
        disabled: &[ClauseOrigin],
        protect_onpath: bool,
        budget: &Budget,
    ) -> CoreResult {
        let mut hard: Vec<Lit> = query.to_vec();
        let mut soft: Vec<Lit> = Vec::new();
        for &(origin, g) in &self.guards {
            if disabled.contains(&origin) {
                continue;
            }
            if protect_onpath && matches!(origin, ClauseOrigin::OnPath(_)) {
                hard.push(g);
            } else {
                soft.push(g);
            }
        }
        let assum: Vec<Lit> = hard.iter().chain(soft.iter()).copied().collect();
        match self.solver.solve_with_under(&assum, budget) {
            SolveOutcome::Sat => CoreResult::Sat,
            SolveOutcome::Unknown { .. } => CoreResult::Unknown,
            SolveOutcome::Unsat => {
                // Deletion-minimize over the soft guards only, keeping
                // the hard prefix asserted in every trial.
                let mut cur: Vec<Lit> = self
                    .solver
                    .core()
                    .iter()
                    .copied()
                    .filter(|l| soft.contains(l))
                    .collect();
                let mut queue: Vec<Lit> = cur.clone();
                let mut minimal = true;
                while let Some(cand) = queue.pop() {
                    if !cur.contains(&cand) {
                        continue;
                    }
                    if budget.check().is_err() {
                        minimal = false;
                        break;
                    }
                    let trial: Vec<Lit> = hard
                        .iter()
                        .copied()
                        .chain(cur.iter().copied().filter(|&l| l != cand))
                        .collect();
                    match self.solver.solve_with_under(&trial, budget) {
                        SolveOutcome::Unsat => {
                            cur = self
                                .solver
                                .core()
                                .iter()
                                .copied()
                                .filter(|l| soft.contains(l))
                                .collect();
                        }
                        SolveOutcome::Sat => {}
                        SolveOutcome::Unknown { .. } => {
                            minimal = false;
                            break;
                        }
                    }
                }
                let groups: Vec<ClauseOrigin> = cur
                    .iter()
                    .filter_map(|l| self.by_code.get(&l.code()).map(|&i| self.guards[i].0))
                    .collect();
                CoreResult::Unsat { groups, minimal }
            }
        }
    }
}

enum CoreResult {
    Unsat {
        groups: Vec<ClauseOrigin>,
        minimal: bool,
    },
    Sat,
    Unknown,
}

/// Attaches a root-cause [`Explanation`] to every diagnostic of the
/// report that lacks one. `sat` must be the model the report was
/// verified against (structural codes only need `rsn`).
///
/// Budget-aware: an exhausted budget degrades remaining diagnostics to
/// cheap structural explanations marked incomplete. Records the
/// `verify.core_size`, `verify.cone_nodes` and `verify.explain_ns`
/// histograms.
pub fn explain_report(rsn: &Rsn, sat: &NetworkSat, report: &mut VerifyReport, budget: &Budget) {
    let _trace = rsn_obs::TraceGuard::new("explain");
    let owners = bit_owners(rsn);
    let mut guarded: Option<GuardedModel> = None;
    for d in report.diagnostics.iter_mut() {
        if d.explanation.is_some() {
            continue;
        }
        let start = Instant::now();
        let e = explain_diagnostic(rsn, sat, d, &owners, &mut guarded, budget);
        rsn_obs::hist_record("verify.explain_ns", start.elapsed().as_nanos() as u64);
        rsn_obs::hist_record("verify.cone_nodes", e.cone_nodes as u64);
        if !e.core.is_empty() || !e.control_bits.is_empty() {
            rsn_obs::hist_record("verify.core_size", e.core_size as u64);
        }
        d.explanation = Some(e);
    }
}

fn explain_diagnostic(
    rsn: &Rsn,
    sat: &NetworkSat,
    d: &Diagnostic,
    owners: &[Option<(NodeId, u32)>],
    guarded: &mut Option<GuardedModel>,
    budget: &Budget,
) -> Explanation {
    let mut roots: Vec<NodeId> = d.node.into_iter().collect();
    roots.extend(d.related.iter().copied());
    let cone = cone_of_influence(rsn, &roots);
    if budget.check().is_err() {
        return structural_explanation(rsn, d, cone.len(), false);
    }
    let node = match d.node {
        Some(n) => n,
        None => return structural_explanation(rsn, d, cone.len(), true),
    };
    match d.code {
        Code::SelectPathMismatch => explain_witness(
            rsn,
            sat,
            d,
            sat.select_mismatch(node),
            &cone,
            owners,
            guarded,
            budget,
        ),
        Code::MuxAddressOverflow => match sat.addr_overflow(node) {
            Some(l) => explain_witness(rsn, sat, d, l, &cone, owners, guarded, budget),
            None => structural_explanation(rsn, d, cone.len(), true),
        },
        Code::NeverSelected => explain_unsat(
            rsn,
            sat,
            d,
            vec![sat.select(node)],
            &cone,
            guarded,
            budget,
            false,
            format!(
                "the select predicate of {} can never hold",
                rsn.node(node).name()
            ),
        ),
        Code::UncontrollableControlRegister => explain_unsat(
            rsn,
            sat,
            d,
            vec![sat.onpath(node)],
            &cone,
            guarded,
            budget,
            true,
            format!("{} can never lie on any scan path", rsn.node(node).name()),
        ),
        Code::DeadMuxInput | Code::MuxNeverSwitches => {
            explain_dead_ports(rsn, sat, d, node, &cone, guarded, budget)
        }
        _ => structural_explanation(rsn, d, cone.len(), true),
    }
}

/// Existence findings: enumerate minimal forcing cubes of `finding`.
#[allow(clippy::too_many_arguments)]
fn explain_witness(
    rsn: &Rsn,
    sat: &NetworkSat,
    d: &Diagnostic,
    finding: Lit,
    cone: &[NodeId],
    owners: &[Option<(NodeId, u32)>],
    guarded: &mut Option<GuardedModel>,
    budget: &Budget,
) -> Explanation {
    let mut scratch = sat.scratch();
    let mut cubes: Vec<Vec<Lit>> = Vec::new();
    let mut complete = false;
    let mut minimized = true;
    loop {
        if cubes.len() >= MAX_CUBES || budget.check().is_err() {
            break;
        }
        match scratch.solver_mut().solve_with_under(&[finding], budget) {
            SolveOutcome::Unsat => {
                complete = true;
                break;
            }
            SolveOutcome::Unknown { .. } => break,
            SolveOutcome::Sat => {}
        }
        // Generalize the witness: why is ¬finding impossible under it?
        let mut assum = vec![!finding];
        for &l in sat.bit_lits().iter().chain(sat.input_lits()) {
            match scratch.solver_mut().lit_value_model(l) {
                Some(true) => assum.push(l),
                Some(false) => assum.push(!l),
                None => {}
            }
        }
        let outcome = scratch.solver_mut().solve_with_under(&assum, budget);
        if !outcome.is_unsat() {
            break; // budget ran out mid-generalization
        }
        let core = scratch.solver_mut().core().to_vec();
        let (core, minimal) = scratch.solver_mut().shrink_core_under(&core, budget);
        minimized &= minimal;
        let cube: Vec<Lit> = core.into_iter().filter(|&l| l != !finding).collect();
        if cube.is_empty() {
            // The finding holds in *every* configuration: no control-bit
            // fix exists. Explain the universality structurally instead.
            let mut e = explain_unsat(
                rsn,
                sat,
                d,
                vec![!finding],
                cone,
                guarded,
                budget,
                true,
                format!(
                    "{} in every configuration; no control-bit assignment avoids it",
                    d.message
                ),
            );
            e.minimized &= minimal;
            return e;
        }
        // Block this cube and look for uncovered failing configurations.
        let blocking: Vec<Lit> = cube.iter().map(|&l| !l).collect();
        scratch.solver_mut().retract();
        scratch.solver_mut().add_clause(blocking);
        cubes.push(cube);
    }

    let mut cut_nodes: BTreeSet<NodeId> = BTreeSet::new();
    let mut cut_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut hints: Vec<RepairHint> = Vec::new();
    if let Some(n) = d.node {
        cut_nodes.insert(n);
        if d.code == Code::SelectPathMismatch {
            push_hint(
                &mut hints,
                RepairAction::ReviseSelect,
                Some(n),
                format!("revise the select predicate of {}", rsn.node(n).name()),
            );
        }
        if rsn.node(n).as_mux().is_some() {
            push_hint(
                &mut hints,
                RepairAction::HardenMux,
                Some(n),
                format!("harden mux {}", rsn.node(n).name()),
            );
        }
    }

    // Map cube literals to control bits and implicate the muxes whose
    // addresses read the forcing registers.
    let fixes: Vec<Vec<ControlBitFix>> = cubes
        .iter()
        .map(|c| cube_to_fixes(rsn, sat, owners, c))
        .collect();
    // Only the primary (first) cube implicates nodes and drives hints:
    // the full cube set still backs the replay, but on large networks the
    // tail cubes touch steering registers all over the fabric and would
    // flood the cut with every mux in sight.
    let mut forcing_regs: BTreeSet<NodeId> = BTreeSet::new();
    if let Some(cube) = fixes.first() {
        for f in cube {
            if let Some((reg, _)) = f.register {
                forcing_regs.insert(reg);
                cut_nodes.insert(reg);
            }
        }
    }
    let mut refs = Vec::new();
    for &m in cone.iter() {
        let NodeKind::Mux(mux) = rsn.node(m).kind() else {
            continue;
        };
        refs.clear();
        for e in &mux.addr_bits {
            e.collect_reg_refs(&mut refs);
        }
        if refs.iter().any(|(reg, _)| forcing_regs.contains(reg)) {
            cut_nodes.insert(m);
            push_hint(
                &mut hints,
                RepairAction::HardenMux,
                Some(m),
                format!("harden mux {}", rsn.node(m).name()),
            );
            if let Some(w) = &d.witness {
                if let Ok(inp) = rsn.mux_selected_input(m, w) {
                    cut_edges.insert((inp, m));
                }
            }
        }
    }

    let (primary, rest) = match fixes.split_first() {
        Some((p, r)) => (p.clone(), r.to_vec()),
        None => (Vec::new(), Vec::new()),
    };
    let core_size = primary.len();
    let narrative = if fixes.is_empty() {
        format!("{} (no forcing cube extracted within budget)", d.message)
    } else {
        let total = fixes.len();
        let bits: Vec<String> = primary.iter().map(|f| f.render()).collect();
        let cover = if complete {
            format!("{total} minimal forcing cube(s) cover all failing configurations")
        } else {
            format!("first {total} forcing cube(s); cover incomplete")
        };
        format!(
            "{} exactly when {} ({cover})",
            d.message,
            bits.join(" and ")
        )
    };
    Explanation {
        cut_nodes: cut_nodes.into_iter().collect(),
        cut_edges: cut_edges.into_iter().collect(),
        control_bits: primary,
        other_cubes: rest,
        core: Vec::new(),
        cone_nodes: cone.len(),
        core_size,
        minimized,
        complete,
        narrative,
        hints,
    }
}

/// Universality findings: a minimal cut of clause groups whose removal
/// makes `query` satisfiable.
#[allow(clippy::too_many_arguments)]
fn explain_unsat(
    rsn: &Rsn,
    sat: &NetworkSat,
    d: &Diagnostic,
    query: Vec<Lit>,
    cone: &[NodeId],
    guarded: &mut Option<GuardedModel>,
    budget: &Budget,
    protect_onpath: bool,
    statement: String,
) -> Explanation {
    let gm = guarded.get_or_insert_with(|| GuardedModel::build(sat));
    match gm.core_groups(&query, &[], protect_onpath, budget) {
        CoreResult::Unsat { groups, minimal } => {
            let mut e = groups_to_explanation(rsn, d, &groups, cone.len());
            e.minimized = minimal;
            e.complete = true;
            e.narrative = if groups.is_empty() {
                format!("{statement}; the refutation needs no cuttable structure")
            } else {
                let labels: Vec<String> = groups.iter().map(|&g| origin_label(rsn, g)).collect();
                format!(
                    "{statement}; the proof rests exactly on: {}",
                    labels.join(", ")
                )
            };
            e
        }
        CoreResult::Sat => {
            // Cannot happen for a sound diagnostic (the query was proven
            // unsat on the unguarded model); degrade gracefully.
            structural_explanation(rsn, d, cone.len(), false)
        }
        CoreResult::Unknown => structural_explanation(rsn, d, cone.len(), false),
    }
}

/// `RSN003`/`RSN004`: merge the cores of every dead decode port.
fn explain_dead_ports(
    rsn: &Rsn,
    sat: &NetworkSat,
    d: &Diagnostic,
    mux: NodeId,
    cone: &[NodeId],
    guarded: &mut Option<GuardedModel>,
    budget: &Budget,
) -> Explanation {
    let Some(m) = rsn.node(mux).as_mux() else {
        return structural_explanation(rsn, d, cone.len(), true);
    };
    // RSN004 names the dead input in `related`; RSN003 means the whole
    // mux, so every port is a candidate.
    let ports: Vec<usize> = (0..m.inputs.len())
        .filter(|&k| d.related.is_empty() || d.related.contains(&m.inputs[k]))
        .collect();
    let gm = guarded.get_or_insert_with(|| GuardedModel::build(sat));
    let mut merged: BTreeSet<ClauseOrigin> = BTreeSet::new();
    let mut minimized = true;
    let mut complete = true;
    let mut dead = 0usize;
    for k in ports {
        if budget.check().is_err() {
            complete = false;
            break;
        }
        match gm.core_groups(&[sat.mux_cond(mux, k)], &[], false, budget) {
            CoreResult::Unsat { groups, minimal } => {
                dead += 1;
                minimized &= minimal;
                merged.extend(groups);
            }
            CoreResult::Sat => {} // alive port (RSN003 lists all)
            CoreResult::Unknown => {
                complete = false;
                break;
            }
        }
    }
    let groups: Vec<ClauseOrigin> = merged.into_iter().collect();
    let mut e = groups_to_explanation(rsn, d, &groups, cone.len());
    e.minimized = minimized;
    e.complete = complete;
    let labels: Vec<String> = groups.iter().map(|&g| origin_label(rsn, g)).collect();
    e.narrative = format!(
        "{} dead decode port(s) of {}; the exclusions rest on: {}",
        dead,
        rsn.node(mux).name(),
        if labels.is_empty() {
            "no cuttable structure".to_string()
        } else {
            labels.join(", ")
        }
    );
    e
}

/// Maps core clause groups to cut nodes/edges and hints.
fn groups_to_explanation(
    rsn: &Rsn,
    d: &Diagnostic,
    groups: &[ClauseOrigin],
    cone_nodes: usize,
) -> Explanation {
    let mut cut_nodes: BTreeSet<NodeId> = BTreeSet::new();
    let mut cut_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut hints: Vec<RepairHint> = Vec::new();
    if let Some(n) = d.node {
        cut_nodes.insert(n);
    }
    for &g in groups {
        match g {
            ClauseOrigin::Select(n) => {
                cut_nodes.insert(n);
                push_hint(
                    &mut hints,
                    RepairAction::ReviseSelect,
                    Some(n),
                    format!("revise the select predicate of {}", rsn.node(n).name()),
                );
            }
            ClauseOrigin::MuxAddr(m) => {
                cut_nodes.insert(m);
                push_hint(
                    &mut hints,
                    RepairAction::HardenMux,
                    Some(m),
                    format!("harden mux {}", rsn.node(m).name()),
                );
            }
            ClauseOrigin::MuxPort(m, k) => {
                cut_nodes.insert(m);
                if let Some(mx) = rsn.node(m).as_mux() {
                    if let Some(&inp) = mx.inputs.get(k) {
                        cut_edges.insert((inp, m));
                    }
                }
                push_hint(
                    &mut hints,
                    RepairAction::HardenMux,
                    Some(m),
                    format!("harden mux {}", rsn.node(m).name()),
                );
            }
            ClauseOrigin::OnPath(n) => {
                cut_nodes.insert(n);
            }
            ClauseOrigin::Base | ClauseOrigin::Mismatch(_) | ClauseOrigin::Overflow(_) => {}
        }
    }
    Explanation {
        cut_nodes: cut_nodes.into_iter().collect(),
        cut_edges: cut_edges.into_iter().collect(),
        control_bits: Vec::new(),
        other_cubes: Vec::new(),
        core: groups.to_vec(),
        cone_nodes,
        core_size: groups.len(),
        minimized: false,
        complete: false,
        narrative: String::new(),
        hints,
    }
}

/// Cheap explanation for graph-derived findings (and the degraded path
/// when the budget is exhausted).
fn structural_explanation(
    rsn: &Rsn,
    d: &Diagnostic,
    cone_nodes: usize,
    complete: bool,
) -> Explanation {
    let mut cut_nodes: BTreeSet<NodeId> = BTreeSet::new();
    let mut hints: Vec<RepairHint> = Vec::new();
    if let Some(n) = d.node {
        cut_nodes.insert(n);
    }
    cut_nodes.extend(d.related.iter().copied());
    match d.code {
        Code::AddressWithoutShadow => {
            if let Some(&reg) = d.related.first() {
                push_hint(
                    &mut hints,
                    RepairAction::AddShadow,
                    Some(reg),
                    format!("add a shadow register to {}", rsn.node(reg).name()),
                );
            }
        }
        Code::UnreachableFromScanIn | Code::CannotReachScanOut => {
            if let Some(n) = d.node {
                push_hint(
                    &mut hints,
                    RepairAction::ConnectNode,
                    Some(n),
                    format!("connect {} to the scan fabric", rsn.node(n).name()),
                );
            }
        }
        Code::ControlDependencyCycle => {
            if let Some(n) = d.node {
                push_hint(
                    &mut hints,
                    RepairAction::BreakCycle,
                    Some(n),
                    format!("break the control cycle through {}", rsn.node(n).name()),
                );
            }
        }
        Code::IneffectiveAugmentation => {
            if let (Some(&a), Some(&b)) = (d.related.first(), d.related.get(1)) {
                push_hint(
                    &mut hints,
                    RepairAction::RemoveAugmentation,
                    Some(b),
                    format!(
                        "drop the augmentation edge {} → {}",
                        rsn.node(a).name(),
                        rsn.node(b).name()
                    ),
                );
            }
        }
        _ => {}
    }
    Explanation {
        cut_nodes: cut_nodes.into_iter().collect(),
        cut_edges: Vec::new(),
        control_bits: Vec::new(),
        other_cubes: Vec::new(),
        core: Vec::new(),
        cone_nodes,
        core_size: 0,
        minimized: false,
        complete,
        narrative: d.message.clone(),
        hints,
    }
}

fn push_hint(
    hints: &mut Vec<RepairHint>,
    action: RepairAction,
    target: Option<NodeId>,
    text: String,
) {
    if !hints
        .iter()
        .any(|h| h.action == action && h.target == target)
    {
        hints.push(RepairHint {
            action,
            target,
            text,
        });
    }
}

/// Maps cube literals back to named control bits.
fn cube_to_fixes(
    rsn: &Rsn,
    sat: &NetworkSat,
    owners: &[Option<(NodeId, u32)>],
    cube: &[Lit],
) -> Vec<ControlBitFix> {
    let mut fixes = Vec::new();
    for &l in cube {
        if let Some(i) = sat.bit_lits().iter().position(|b| b.var() == l.var()) {
            let (label, register) = match owners.get(i).copied().flatten() {
                Some((reg, b)) => (format!("{}[{}]", rsn.node(reg).name(), b), Some((reg, b))),
                None => (format!("bit{i}"), None),
            };
            fixes.push(ControlBitFix {
                register,
                bit: Some(i),
                input: None,
                label,
                value: l.polarity(),
            });
        } else if let Some(i) = sat.input_lits().iter().position(|b| b.var() == l.var()) {
            fixes.push(ControlBitFix {
                register: None,
                bit: None,
                input: Some(i as u32),
                label: format!("in{i}"),
                value: l.polarity(),
            });
        }
    }
    fixes
}

/// Replays an explanation against the model and reports whether
/// applying its cut provably eliminates the diagnostic:
///
/// * existence findings — blocking every enumerated forcing cube makes
///   the finding unsatisfiable;
/// * universality findings — disabling the core clause groups makes the
///   refuted property satisfiable.
///
/// Returns `None` for graph-derived codes (no SAT-level replay
/// semantics) and for incomplete explanations.
pub fn replay_eliminates(rsn: &Rsn, sat: &NetworkSat, d: &Diagnostic) -> Option<bool> {
    let e = d.explanation.as_ref()?;
    if !e.complete {
        return None;
    }
    let node = d.node?;
    let _ = rsn;
    match d.code {
        Code::SelectPathMismatch | Code::MuxAddressOverflow => {
            let finding = if d.code == Code::SelectPathMismatch {
                sat.select_mismatch(node)
            } else {
                sat.addr_overflow(node)?
            };
            if e.control_bits.is_empty() {
                // Universality fallback: the finding held everywhere and
                // was explained by a structural core instead.
                if e.core.is_empty() {
                    return None;
                }
                let mut gm = GuardedModel::build(sat);
                return match gm.core_groups(&[!finding], &e.core, true, &Budget::unlimited()) {
                    CoreResult::Sat => Some(true),
                    _ => Some(false),
                };
            }
            let mut scratch = sat.scratch();
            let mut all = vec![e.control_bits.clone()];
            all.extend(e.other_cubes.iter().cloned());
            for cube in &all {
                let blocking: Vec<Lit> = cube.iter().filter_map(|f| fix_lit(sat, f)).collect();
                if blocking.len() != cube.len() {
                    return Some(false);
                }
                let blocking: Vec<Lit> = blocking.into_iter().map(|l| !l).collect();
                scratch.solver_mut().add_clause(blocking);
            }
            Some(!scratch.solver_mut().solve_with(&[finding]))
        }
        Code::NeverSelected | Code::UncontrollableControlRegister => {
            if e.core.is_empty() {
                return None;
            }
            let query = if d.code == Code::NeverSelected {
                sat.select(node)
            } else {
                sat.onpath(node)
            };
            let protect = d.code == Code::UncontrollableControlRegister;
            let mut gm = GuardedModel::build(sat);
            match gm.core_groups(&[query], &e.core, protect, &Budget::unlimited()) {
                CoreResult::Sat => Some(true),
                _ => Some(false),
            }
        }
        _ => None,
    }
}

/// The model literal a [`ControlBitFix`] pins, at the pinned polarity.
fn fix_lit(sat: &NetworkSat, f: &ControlBitFix) -> Option<Lit> {
    let base = if let Some(i) = f.bit {
        *sat.bit_lits().get(i)?
    } else if let Some(i) = f.input {
        *sat.input_lits().get(i as usize)?
    } else {
        return None;
    };
    Some(if f.value { base } else { !base })
}
