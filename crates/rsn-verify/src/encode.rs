//! One-shot CNF encoding of a network's control logic and active-path
//! membership, queried incrementally through solver assumptions.
//!
//! The encoding mirrors the semantics of `rsn_core::path`: a node is *on
//! path* iff some successor chain reaches a scan-out port (primary or
//! secondary) with every traversed multiplexer steered to the traversed
//! input — equivalently, iff some `trace_path_from(port, cfg)` contains
//! the node. Every
//! check of the exhaustive engine is a satisfiability question over this
//! single formula, so the CNF is built once per network and each query is
//! one [`Solver::solve_with`](rsn_sat::Solver::solve_with) call — learnt
//! clauses carry over between queries *within one scratch*.
//!
//! The model itself is immutable after [`NetworkSat::build`]: every
//! clause (including derived query gates) is added upfront, and queries
//! run against a caller-owned [`SatScratch`] — a private clone of the
//! pristine solver. That split lets one `Arc<NetworkSat>` serve many
//! concurrent requests, each with its own search state.

use std::collections::HashMap;

use rsn_core::{Config, ControlExpr, InputId, NodeId, NodeKind, Rsn};
use rsn_sat::{CnfBuilder, Lit, Solver};

/// Structural provenance of an emitted clause: which piece of the
/// network the clause encodes. Stored once per clause as an index into a
/// compact side table — the explanation engine maps minimized UNSAT
/// cores back through it to nodes, mux ports and select predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClauseOrigin {
    /// Encoder infrastructure (constant literals); never cut.
    Base,
    /// The select-predicate expression of a segment.
    Select(NodeId),
    /// The address-bit expressions of a mux.
    MuxAddr(NodeId),
    /// The decode conjunction "address == k" of `(mux, input k)`; cutting
    /// it corresponds to cutting the dataflow edge `inputs[k] → mux`.
    MuxPort(NodeId, usize),
    /// The on-path-membership gate of a node.
    OnPath(NodeId),
    /// The `select XOR onpath` query gate of a segment (definitional;
    /// never cut).
    Mismatch(NodeId),
    /// The out-of-range-decode query gate of a mux (definitional; never
    /// cut).
    Overflow(NodeId),
}

/// The CNF model of one network: variables for every shadow bit and
/// primary input, plus derived literals for select predicates, mux input
/// conditions and on-path membership. Immutable once built; queries go
/// through a [`SatScratch`].
pub struct NetworkSat {
    /// The encoder and its pristine solver. No query ever touches this
    /// solver — scratches clone it.
    cnf: CnfBuilder,
    /// One literal per shadow bit (config bit order).
    bits: Vec<Lit>,
    /// One literal per primary control input.
    inputs: Vec<Lit>,
    /// `onpath[node]`: the node lies on the active path to the primary
    /// scan-out port.
    onpath: Vec<Lit>,
    /// `select[node]`: the segment's select predicate (segments only).
    select: Vec<Option<Lit>>,
    /// `(mux, input index)` → address decodes to that input.
    cond: HashMap<(NodeId, usize), Lit>,
    /// `mismatch[node] = select XOR onpath` (segments only).
    mismatch: Vec<Option<Lit>>,
    /// Mux → address decodes beyond the input count (only present when
    /// the address space is wider than the input list).
    overflow: HashMap<NodeId, Lit>,
    /// Provenance side table: clause tags recorded by the builder index
    /// into this vector.
    origins: Vec<ClauseOrigin>,
}

// Compile-time guarantee: the artifact stays shareable across threads.
// A future field with interior mutability (Cell, Rc, raw pointers) fails
// here instead of at a distant Arc use site.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<NetworkSat>()
};

/// Caller-owned mutable query state for one [`NetworkSat`]: a private
/// clone of the pristine solver plus a query counter. Learnt clauses
/// accumulate here, never in the shared model.
#[derive(Debug, Clone)]
pub struct SatScratch {
    solver: Solver,
    queries: usize,
}

impl SatScratch {
    /// Number of SAT queries issued through this scratch.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Routes this scratch's queries through the portfolio solver with
    /// `threads` workers (`1` = the exact serial loop). See
    /// [`rsn_sat::Solver::set_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.solver.set_threads(threads);
    }

    /// Direct solver access for the explanation engine (core extraction,
    /// blocking clauses). Counts as zero queries; the engine reports its
    /// own metrics.
    pub(crate) fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }
}

impl NetworkSat {
    /// Builds the CNF for `rsn`. Linear in network plus expression size.
    pub fn build(rsn: &Rsn) -> NetworkSat {
        let mut cnf = CnfBuilder::new();
        // Provenance is always recorded: the per-clause cost is one flat
        // push, and the explanation engine needs the table on demand.
        cnf.record_provenance();
        let bits: Vec<Lit> = (0..rsn.shadow_bits()).map(|_| cnf.new_lit()).collect();
        let inputs: Vec<Lit> = (0..rsn.num_inputs()).map(|_| cnf.new_lit()).collect();

        let mut me = NetworkSat {
            cnf,
            bits,
            inputs,
            onpath: Vec::new(),
            select: vec![None; rsn.node_count()],
            cond: HashMap::new(),
            mismatch: vec![None; rsn.node_count()],
            overflow: HashMap::new(),
            origins: Vec::new(),
        };

        // Tag 0 = Base; force the constant literal into existence here so
        // its unit clause is not misattributed to a later region.
        me.begin(ClauseOrigin::Base);
        let _ = me.cnf.lit_true();

        // Select predicates.
        for s in rsn.segments() {
            me.begin(ClauseOrigin::Select(s));
            let e = &rsn.node(s).as_segment().expect("segment").select;
            let l = me.expr_lit(rsn, e);
            me.select[s.index()] = Some(l);
        }

        // Mux input conditions: address equals the input index.
        for m in rsn.muxes() {
            let mux = rsn.node(m).as_mux().expect("mux").clone();
            me.begin(ClauseOrigin::MuxAddr(m));
            let addr: Vec<Lit> = mux.addr_bits.iter().map(|e| me.expr_lit(rsn, e)).collect();
            for k in 0..mux.inputs.len() {
                me.begin(ClauseOrigin::MuxPort(m, k));
                let conj: Vec<Lit> = addr
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| if (k >> i) & 1 == 1 { b } else { !b })
                    .collect();
                let lit = me.cnf.and(conj);
                me.cond.insert((m, k), lit);
            }
        }

        // On-path membership in reverse topological order (the formula of
        // `rsn-bmc`'s select-consistency check, factored here so every
        // check shares it).
        let n = rsn.node_count();
        let fals = me.cnf.lit_false();
        me.onpath = vec![fals; n];
        for &v in rsn.topo_order().iter().rev() {
            me.begin(ClauseOrigin::OnPath(v));
            let l = match rsn.node(v).kind() {
                // Every scan-out port terminates a scan path: a segment
                // steered toward a secondary port is as observable (and as
                // much "selected") as one on the primary path.
                NodeKind::ScanOut => me.cnf.lit_true(),
                _ => {
                    let mut alts = Vec::new();
                    for &w in rsn.successors(v) {
                        match rsn.node(w).kind() {
                            NodeKind::Mux(mux) => {
                                for (k, &inp) in mux.inputs.iter().enumerate() {
                                    if inp == v {
                                        let c = me.cond[&(w, k)];
                                        let a = me.cnf.and([me.onpath[w.index()], c]);
                                        alts.push(a);
                                    }
                                }
                            }
                            _ => alts.push(me.onpath[w.index()]),
                        }
                    }
                    me.cnf.or(alts)
                }
            };
            me.onpath[v.index()] = l;
        }

        // Derived query gates, built upfront: the solver only accepts new
        // clauses at decision level 0, i.e. before the first query.
        for s in rsn.segments() {
            me.begin(ClauseOrigin::Mismatch(s));
            let sel = me.select[s.index()].expect("select literal");
            let on = me.onpath[s.index()];
            me.mismatch[s.index()] = Some(me.cnf.xor(sel, on));
        }
        for m in rsn.muxes() {
            let mux = rsn.node(m).as_mux().expect("mux");
            let n_inputs = mux.inputs.len();
            let span = 1usize << mux.addr_bits.len().min(usize::BITS as usize - 1);
            if n_inputs < span {
                me.begin(ClauseOrigin::Overflow(m));
                // The input conditions partition the address space, so an
                // out-of-range decode is exactly "no valid condition holds".
                let conds: Vec<Lit> = (0..n_inputs).map(|k| me.cond[&(m, k)]).collect();
                let in_range = me.cnf.or(conds);
                me.overflow.insert(m, !in_range);
            }
        }

        me
    }

    /// Opens a provenance region: clauses emitted from here to the next
    /// `begin` carry `origin`.
    fn begin(&mut self, origin: ClauseOrigin) {
        let tag = self.origins.len() as u32;
        self.origins.push(origin);
        self.cnf.set_tag(tag);
    }

    /// Encodes a control expression over the state literals.
    fn expr_lit(&mut self, rsn: &Rsn, e: &ControlExpr) -> Lit {
        match e {
            ControlExpr::Const(b) => self.cnf.constant(*b),
            ControlExpr::Reg(node, bit) => {
                let off = rsn.shadow_offset(*node).expect("validated reference");
                self.bits[(off + *bit) as usize]
            }
            ControlExpr::Input(i) => self.inputs[i.0 as usize],
            ControlExpr::Not(inner) => !self.expr_lit(rsn, inner),
            ControlExpr::And(es) => {
                let lits: Vec<Lit> = es.iter().map(|x| self.expr_lit(rsn, x)).collect();
                self.cnf.and(lits)
            }
            ControlExpr::Or(es) => {
                let lits: Vec<Lit> = es.iter().map(|x| self.expr_lit(rsn, x)).collect();
                self.cnf.or(lits)
            }
        }
    }

    /// On-path literal of a node.
    pub fn onpath(&self, node: NodeId) -> Lit {
        self.onpath[node.index()]
    }

    /// Select literal of a segment.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a segment.
    pub fn select(&self, node: NodeId) -> Lit {
        self.select[node.index()].expect("select literal of a segment")
    }

    /// Condition literal for mux `m` decoding input `k`.
    pub fn mux_cond(&self, m: NodeId, k: usize) -> Lit {
        self.cond[&(m, k)]
    }

    /// `select XOR onpath` literal of a segment.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a segment.
    pub fn select_mismatch(&self, node: NodeId) -> Lit {
        self.mismatch[node.index()].expect("mismatch literal of a segment")
    }

    /// Out-of-range-decode literal of mux `m`, or `None` when the address
    /// space exactly covers the inputs.
    pub fn addr_overflow(&self, m: NodeId) -> Option<Lit> {
        self.overflow.get(&m).copied()
    }

    /// A fresh query scratch: a private clone of the pristine solver.
    /// Cheap relative to [`build`](NetworkSat::build) (no re-encoding),
    /// and independent scratches never contend.
    pub fn scratch(&self) -> SatScratch {
        SatScratch {
            solver: self.cnf.solver().clone(),
            queries: 0,
        }
    }

    /// Asks whether the formula is satisfiable under `assumptions`; on
    /// success extracts the witness configuration from the model.
    pub fn witness(
        &self,
        rsn: &Rsn,
        scratch: &mut SatScratch,
        assumptions: &[Lit],
    ) -> Option<Config> {
        scratch.queries += 1;
        if !scratch.solver.solve_with(assumptions) {
            return None;
        }
        let mut config = Config::zeroed(self.bits.len(), rsn.num_inputs());
        for (i, &l) in self.bits.iter().enumerate() {
            if scratch.solver.lit_value_model(l) == Some(true) {
                config.set_bit(i, true);
            }
        }
        for (i, &l) in self.inputs.iter().enumerate() {
            if scratch.solver.lit_value_model(l) == Some(true) {
                config.set_input(InputId(i as u32), true);
            }
        }
        Some(config)
    }

    /// Asks whether the formula is satisfiable under `assumptions`
    /// without extracting a model.
    pub fn satisfiable(&self, scratch: &mut SatScratch, assumptions: &[Lit]) -> bool {
        scratch.queries += 1;
        scratch.solver.solve_with(assumptions)
    }

    /// Number of variables in the model (state literals plus Tseitin
    /// gate outputs).
    pub fn model_vars(&self) -> usize {
        self.cnf.solver().num_vars()
    }

    /// The shadow-bit literals, in config bit order.
    pub fn bit_lits(&self) -> &[Lit] {
        &self.bits
    }

    /// The primary-input literals, in input order.
    pub fn input_lits(&self) -> &[Lit] {
        &self.inputs
    }

    /// Iterates over every recorded clause of the model together with
    /// its structural origin, in emission order. The explanation engine
    /// re-assembles guarded copies of the formula from this.
    pub fn recorded_clauses(&self) -> impl Iterator<Item = (&[Lit], ClauseOrigin)> + '_ {
        self.cnf
            .recorded()
            .map(move |(lits, tag)| (lits, self.origins[tag as usize]))
    }
}
