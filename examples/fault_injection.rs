//! Fault injection walkthrough: inject single stuck-at faults into an RSN
//! and its fault-tolerant counterpart and watch which segments survive —
//! the paper's "computing scan paths in faulty RSNs" in action.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use ftrsn::core::Rsn;
use ftrsn::fault::{accessibility, effect_of, fault_universe, HardeningProfile};
use ftrsn::itc02::parse_soc;
use ftrsn::sib::generate;
use ftrsn::synth::{synthesize, SynthesisOptions};

fn report(rsn: &Rsn, profile: HardeningProfile, label: &str) {
    println!("--- {label} ---");
    // Inject every data fault at segments named in the walkthrough and
    // show who survives.
    let interesting = ["m1.sib", "m1.c0.seg", "m2.c0.sib"];
    for fault in fault_universe(rsn) {
        let node = fault.site.node();
        let name = rsn.node(node).name();
        if !interesting.contains(&name)
            || !matches!(fault.site, ftrsn::fault::FaultSite::SegmentData(_))
        {
            continue;
        }
        let effect = effect_of(rsn, &fault, profile);
        let acc = accessibility(rsn, &effect);
        let lost: Vec<&str> = rsn
            .segments()
            .filter(|s| !acc.accessible[s.index()])
            .map(|s| rsn.node(s).name())
            .collect();
        println!(
            "fault {fault:<24} accessible {}/{} | lost: {}",
            acc.accessible_segments,
            acc.total_segments,
            if lost.is_empty() {
                "-".to_string()
            } else {
                lost.join(", ")
            }
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small 2-module SoC so the output stays readable.
    let soc = parse_soc("SocName demo\n1 0 0 0 2 : 6 4\n2 0 0 0 1 : 8\n")?;
    let rsn = generate(&soc)?;

    println!(
        "network: {} segments ({} bits), {} muxes\n",
        rsn.segments().count(),
        rsn.total_bits(),
        rsn.muxes().count()
    );

    report(
        &rsn,
        HardeningProfile::unhardened(),
        "original SIB-based RSN",
    );

    let ft = synthesize(&rsn, &SynthesisOptions::new())?;
    println!(
        "\nsynthesized fault-tolerant RSN: +{} muxes, +{} bits\n",
        ft.report.added_muxes, ft.report.added_bits
    );
    report(&ft.rsn, HardeningProfile::hardened(), "fault-tolerant RSN");

    // Show a rerouted scan access: with m1.sib broken, the FT network can
    // still reach m1's chains through the augmented edges.
    let sib = ft.rsn.find("m1.sib").expect("exists");
    let fault = ftrsn::fault::Fault {
        site: ftrsn::fault::FaultSite::SegmentData(sib),
        value: false,
        weight: 2,
    };
    let effect = effect_of(&ft.rsn, &fault, HardeningProfile::hardened());
    let acc = accessibility(&ft.rsn, &effect);
    let leaf = ft.rsn.find("m1.c0.seg").expect("exists");
    println!(
        "\nwith m1.sib stuck-at-0, m1.c0.seg accessible in FT network: {}",
        acc.accessible[leaf.index()]
    );
    Ok(())
}
