//! Fault diagnosis walkthrough: locate an unknown stuck-at fault from the
//! observable access behavior of the network.
//!
//! ```text
//! cargo run --example diagnosis
//! ```

use ftrsn::fault::diagnose::{FaultDictionary, Signature};
use ftrsn::fault::{Fault, FaultSite, HardeningProfile};
use ftrsn::itc02::parse_soc;
use ftrsn::sib::generate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = parse_soc("SocName dut\n1 0 0 0 2 : 6 4\n2 0 0 0 2 : 8 2\n")?;
    let rsn = generate(&soc)?;
    let profile = HardeningProfile::unhardened();

    println!(
        "device under diagnosis: {} segments, {} muxes",
        rsn.segments().count(),
        rsn.muxes().count()
    );

    // Build the fault dictionary: predicted signature per fault class.
    let dict = FaultDictionary::build(&rsn, profile);
    let histogram = dict.resolution_histogram();
    println!(
        "fault dictionary: {} signature classes over {} faults (largest class: {})",
        dict.class_count(),
        histogram.iter().sum::<usize>(),
        histogram.last().copied().unwrap_or(0),
    );

    // The "defective part": a stuck-at fault we pretend not to know.
    let secret = rsn.find("m2.c0.sib").expect("exists");
    let injected = Fault {
        site: FaultSite::SegmentShadow(secret),
        value: false,
        weight: 1,
    };

    // The tester measures which segments are still accessible.
    let observed = Signature::predicted(&rsn, &injected, profile);
    println!(
        "observed: {}/{} segments inaccessible",
        observed.failures(),
        rsn.segments().count()
    );

    // Diagnose: which faults are consistent with the observation?
    let candidates = dict.diagnose(&observed);
    println!("diagnosis candidates ({}):", candidates.len());
    for c in candidates {
        println!("  {c}  at element {}", rsn.node(c.site.node()).name());
    }
    assert!(
        candidates.contains(&injected),
        "true fault must be a candidate"
    );

    // For comparison: the same fault in the fault-tolerant network barely
    // perturbs the signature, which is the point of the synthesis — but
    // the dictionary still distinguishes it from fault-free operation.
    let ft = ftrsn::synth::synthesize(&rsn, &ftrsn::synth::SynthesisOptions::new())?;
    let ft_secret = ft.rsn.find("m2.c0.sib").expect("preserved");
    let ft_fault = Fault {
        site: FaultSite::SegmentShadow(ft_secret),
        value: false,
        weight: 1,
    };
    let ft_observed = Signature::predicted(&ft.rsn, &ft_fault, HardeningProfile::hardened());
    println!(
        "\nsame fault in the fault-tolerant network: {}/{} segments inaccessible",
        ft_observed.failures(),
        ft.rsn.segments().count()
    );
    Ok(())
}
