//! Quickstart: make a small RSN fault-tolerant and quantify the gain.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftrsn::core::examples::fig2;
use ftrsn::fault::{analyze, HardeningProfile};
use ftrsn::synth::area::{costs, AreaModel, Overhead};
use ftrsn::synth::{synthesize, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The original network: the paper's Fig. 2 example.
    let rsn = fig2();
    println!(
        "original network: {} segments, {} muxes, {} bits",
        rsn.segments().count(),
        rsn.muxes().count(),
        rsn.total_bits()
    );

    // 2. Quantify its fault tolerance: fraction of segments accessible in
    //    presence of each single stuck-at fault.
    let before = analyze(&rsn, HardeningProfile::unhardened());
    println!("before synthesis: {before}");

    // 3. Synthesize the fault-tolerant network (connectivity augmentation
    //    via ILP, select re-derivation, TMR addresses, secondary ports).
    let result = synthesize(&rsn, &SynthesisOptions::new())?;
    println!(
        "synthesis: {} edges added, {} muxes added, {} routing bits, ILP={}, cuts={}",
        result.report.added_edges,
        result.report.added_muxes,
        result.report.added_bits,
        result.report.used_ilp,
        result.report.cut_rounds,
    );

    // 4. Quantify again.
    let after = analyze(&result.rsn, HardeningProfile::hardened());
    println!("after synthesis:  {after}");

    // 5. What did it cost?
    let model = AreaModel::default();
    let overhead = Overhead::between(&costs(&rsn, &model), &costs(&result.rsn, &model));
    println!(
        "overhead: mux ×{:.2}, bits ×{:.2}, nets ×{:.2}, area ×{:.2}",
        overhead.mux_ratio, overhead.bits_ratio, overhead.nets_ratio, overhead.area_ratio
    );

    assert!(after.avg_segments > before.avg_segments);
    Ok(())
}
