//! End-to-end ITC'02 flow: SoC description → SIB-based RSN →
//! fault-tolerant RSN → metric and area report.
//!
//! ```text
//! cargo run --release --example itc02_flow                # embedded d695
//! cargo run --release --example itc02_flow -- u226        # embedded SoC
//! cargo run --release --example itc02_flow -- path/to.soc # real .soc file
//! ```

use std::env;
use std::fs;

use ftrsn::fault::{analyze_parallel, HardeningProfile};
use ftrsn::itc02::{by_name, parse_soc, Soc};
use ftrsn::sib::{generate, stats};
use ftrsn::synth::area::{costs, AreaModel, Overhead};
use ftrsn::synth::{synthesize, SynthesisOptions};

fn load(arg: Option<&str>) -> Result<Soc, Box<dyn std::error::Error>> {
    match arg {
        None => Ok(by_name("d695").expect("embedded d695")),
        Some(name) => {
            if let Some(soc) = by_name(name) {
                return Ok(soc);
            }
            let text = fs::read_to_string(name)?;
            Ok(parse_soc(&text)?)
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = env::args().skip(1).collect();
    let soc = load(args.first().map(String::as_str))?;
    println!(
        "SoC {}: {} modules, {} chains, {} payload bits, depth {}",
        soc.name,
        soc.modules.len(),
        soc.total_chains(),
        soc.payload_bits(),
        soc.depth()
    );

    let rsn = generate(&soc)?;
    let st = stats(&rsn, &soc);
    println!(
        "SIB-RSN: {} SIBs, {} leaves, {} top registers, {} bits, {} levels",
        st.sibs, st.leaves, st.top_registers, st.bits, st.levels
    );

    let before = analyze_parallel(&rsn, HardeningProfile::unhardened());
    println!("original accessibility: {before}");

    let result = synthesize(&rsn, &SynthesisOptions::new())?;
    println!(
        "synthesized: +{} edges, +{} muxes, +{} bits (solver: {})",
        result.report.added_edges,
        result.report.added_muxes,
        result.report.added_bits,
        if result.report.used_ilp {
            "ILP"
        } else {
            "greedy"
        },
    );

    let after = analyze_parallel(&result.rsn, HardeningProfile::hardened());
    println!("fault-tolerant accessibility: {after}");

    let model = AreaModel::default();
    let o = Overhead::between(&costs(&rsn, &model), &costs(&result.rsn, &model));
    println!(
        "overhead: mux ×{:.2}, bits ×{:.2}, nets ×{:.2}, area ×{:.2}",
        o.mux_ratio, o.bits_ratio, o.nets_ratio, o.area_ratio
    );
    Ok(())
}
