//! Exports an RSN (original and fault-tolerant) as a structural Verilog
//! netlist and an IEEE 1687 ICL description.
//!
//! ```text
//! cargo run --example netlist_export [-- <soc-name> [output-dir]]
//! ```

use std::env;
use std::fs;
use std::path::PathBuf;

use ftrsn::export::{to_icl, to_verilog};
use ftrsn::itc02::by_name;
use ftrsn::sib::generate;
use ftrsn::synth::{synthesize, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("u226");
    let dir = PathBuf::from(args.get(1).map(String::as_str).unwrap_or("target/netlists"));
    fs::create_dir_all(&dir)?;

    let soc = by_name(name).ok_or("unknown embedded benchmark")?;
    let rsn = generate(&soc)?;
    let ft = synthesize(&rsn, &SynthesisOptions::new())?;

    for (tag, network) in [("orig", &rsn), ("ft", &ft.rsn)] {
        let v = to_verilog(network);
        let icl = to_icl(network);
        let vpath = dir.join(format!("{name}_{tag}.v"));
        let ipath = dir.join(format!("{name}_{tag}.icl"));
        fs::write(&vpath, &v)?;
        fs::write(&ipath, &icl)?;
        println!(
            "{tag:>4}: {} ({} lines verilog, {} lines icl)",
            network.name(),
            v.lines().count(),
            icl.lines().count()
        );
        println!("      -> {}", vpath.display());
        println!("      -> {}", ipath.display());
    }
    Ok(())
}
