//! Reproduces the data behind the paper's running example figures:
//!
//! * **Fig. 2** — the example RSN with segments A, B, C, D and the active
//!   path A, B, D in the initial state (printed as Graphviz DOT).
//! * **Fig. 4** — the dataflow graph's original edges `E`, potential edges
//!   `E_P` with their costs, and the minimal augmenting edge set `E_A`
//!   computed by the ILP.
//! * **Fig. 5** — the synthesized select equation of segment B.
//!
//! ```text
//! cargo run --example paper_figures
//! ```

use ftrsn::core::examples::fig2;
use ftrsn::synth::select::{derive_selects, select_equation};
use ftrsn::synth::{augment_ilp, AugmentOptions, Dataflow, SelectMode, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rsn = fig2();

    println!("==== Fig. 2: the example RSN ====");
    println!("{}", rsn.to_dot(Some(&rsn.reset_config())));
    let path = rsn.active_path(&rsn.reset_config())?;
    let names: Vec<&str> = path.segments(&rsn).map(|s| rsn.node(s).name()).collect();
    println!("active path in the initial state: {}\n", names.join(" -> "));

    println!("==== Fig. 4: potential edges and the minimal augmenting set ====");
    let df = Dataflow::extract(&rsn);
    println!("vertices (level):");
    for v in 0..df.len() {
        println!("  {} (level {})", df.name(&rsn, v), df.levels[v]);
    }
    println!("original edges E:");
    for (u, v) in df.graph.edges() {
        println!("  {} -> {}", df.name(&rsn, u), df.name(&rsn, v));
    }
    let opts = AugmentOptions::default();
    println!(
        "potential edges E_P \\ E (cost = 1 + α·Δlevel, α = {}):",
        opts.alpha
    );
    for i in 0..df.len() {
        for j in 0..df.len() {
            if i == j || j == df.root || i == df.sink || df.levels[j] < df.levels[i] {
                continue;
            }
            if df.graph.has_edge(i, j) {
                continue;
            }
            let cost = ftrsn::synth::augment::edge_cost(&df.levels, opts.alpha, i, j);
            println!(
                "  {} -> {}  (cost {:.2})",
                df.name(&rsn, i),
                df.name(&rsn, j),
                cost
            );
        }
    }
    let aug = augment_ilp(&df, &opts)?;
    println!(
        "minimal augmenting edge set E_A \\ E (ILP, cost {:.2}, {} cut rounds):",
        aug.cost, aug.cut_rounds
    );
    for &(i, j) in &aug.added {
        println!("  {} -> {}", df.name(&rsn, i), df.name(&rsn, j));
    }
    println!();

    println!("==== Fig. 5: synthesized select equations ====");
    let mut synth_opts = SynthesisOptions::new();
    synth_opts.select_mode = SelectMode::Always;
    synth_opts.secondary_ports = false;
    let result = ftrsn::synth::synthesize(&rsn, &synth_opts)?;
    let ft = &result.rsn;
    let selects = derive_selects(ft);
    for name in ["A", "B", "C", "D"] {
        let seg = ft.find(name).expect("original segment preserved");
        println!("  {}", select_equation(ft, &selects, seg));
    }
    Ok(())
}
